//! Expansion functions for the expanded distance family (§3.4).
//!
//! Distances computable in expanded form run a single annihilating
//! semiring pass to get per-pair inner terms (`dot`), then combine those
//! with row norms in an embarrassingly parallel element-wise kernel. The
//! arithmetic of that kernel, per distance, lives here, shared by the
//! simulated GPU expansion kernel, the CPU baseline, and the dense
//! reference so all code paths agree bit-for-bit on the combination step.

use crate::distance::Distance;
use sparse::Real;

/// Inputs to an expansion function for one `(i, j)` output cell.
///
/// `a_norms` / `b_norms` hold the row norms of `A_i` / `B_j`, parallel to
/// the [`Distance::norms`] slice (unused slots are zero). `k` is the
/// shared dimensionality (number of columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionInputs<T> {
    /// The semiring inner term `⟨A_i, B_j⟩` (under the distance's `⊗`).
    pub dot: T,
    /// Norms of the query row, parallel to `Distance::norms()`.
    pub a_norms: [T; 2],
    /// Norms of the index row, parallel to `Distance::norms()`.
    pub b_norms: [T; 2],
    /// Dimensionality `k` of the vectors.
    pub k: usize,
}

impl<T: Real> ExpansionInputs<T> {
    /// Convenience constructor for distances that use no norms.
    pub fn dot_only(dot: T, k: usize) -> Self {
        Self {
            dot,
            a_norms: [T::ZERO; 2],
            b_norms: [T::ZERO; 2],
            k,
        }
    }
}

/// Applies the expansion function of `distance` (expanded family only).
///
/// # Panics
///
/// Panics if called for a NAMM-family distance, which has no expanded
/// form — the type-level hint is `Distance::family()`.
pub fn expand<T: Real>(distance: Distance, x: ExpansionInputs<T>) -> T {
    let k = T::from_usize(x.k);
    match distance {
        Distance::DotProduct => x.dot,
        // ‖x‖² − 2⟨x,y⟩ + ‖y‖², clamped against catastrophic cancellation
        // ("numerical instabilities can arise from cancellations", §2.1).
        Distance::Euclidean => (x.a_norms[0] - T::from_f64(2.0) * x.dot + x.b_norms[0])
            .max(T::ZERO)
            .sqrt(),
        Distance::Cosine => {
            let (na, nb) = (x.a_norms[0], x.b_norms[0]);
            if na == T::ZERO && nb == T::ZERO {
                T::ZERO
            } else if na == T::ZERO || nb == T::ZERO {
                T::ONE
            } else {
                T::ONE - x.dot / (na * nb)
            }
        }
        Distance::Correlation => {
            // 1 − (k⟨x,y⟩ − ΣxΣy) / (√(k‖x‖²−(Σx)²) · √(k‖y‖²−(Σy)²))
            let (sa, qa) = (x.a_norms[0], x.a_norms[1]);
            let (sb, qb) = (x.b_norms[0], x.b_norms[1]);
            let da = (k * qa - sa * sa).max(T::ZERO).sqrt();
            let db = (k * qb - sb * sb).max(T::ZERO).sqrt();
            if da == T::ZERO && db == T::ZERO {
                T::ZERO
            } else if da == T::ZERO || db == T::ZERO {
                T::ONE
            } else {
                T::ONE - (k * x.dot - sa * sb) / (da * db)
            }
        }
        Distance::DiceSorensen => {
            let denom = x.a_norms[0] + x.b_norms[0];
            if denom == T::ZERO {
                T::ZERO
            } else {
                T::ONE - T::from_f64(2.0) * x.dot / denom
            }
        }
        Distance::Jaccard => {
            let denom = x.a_norms[0] + x.b_norms[0] - x.dot;
            if denom == T::ZERO {
                T::ZERO
            } else {
                T::ONE - x.dot / denom
            }
        }
        // 1/√2 · √(Σx + Σy − 2⟨√x,√y⟩) — exact for arbitrary non-negative
        // input (the paper's `1 − √⟨√x·√y⟩` assumes probability rows).
        Distance::Hellinger => ((x.a_norms[0] + x.b_norms[0] - T::from_f64(2.0) * x.dot)
            .max(T::ZERO)
            / T::from_f64(2.0))
        .sqrt(),
        Distance::KlDivergence => x.dot,
        Distance::RusselRao => (k - x.dot) / k,
        // Bray-Curtis: the NAMM union pass delivered Σ|x−y| as `dot`;
        // the norms supply the Σx + Σy denominator.
        Distance::BrayCurtis => {
            let denom = x.a_norms[0] + x.b_norms[0];
            if denom == T::ZERO {
                T::ZERO
            } else {
                x.dot / denom
            }
        }
        namm => panic!("{namm} is a NAMM distance with no expanded form"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(dot: f64, a: [f64; 2], b: [f64; 2], k: usize) -> ExpansionInputs<f64> {
        ExpansionInputs {
            dot,
            a_norms: a,
            b_norms: b,
            k,
        }
    }

    #[test]
    fn euclidean_expansion_matches_direct() {
        // x = [3, 0], y = [0, 4]: ‖x‖²=9, ‖y‖²=16, dot=0 → 5
        let d = expand(Distance::Euclidean, inputs(0.0, [9.0, 0.0], [16.0, 0.0], 2));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_expansion_clamps_cancellation() {
        // Identical vectors with rounding noise must not produce NaN.
        let d = expand(
            Distance::Euclidean,
            inputs(1.0 + 1e-16, [1.0, 0.0], [1.0, 0.0], 4),
        );
        assert!(d >= 0.0 && d.is_finite());
    }

    #[test]
    fn cosine_of_parallel_vectors_is_zero() {
        // x = y = [1,1]: dot=2, ‖·‖=√2
        let d = expand(
            Distance::Cosine,
            inputs(2.0, [2.0f64.sqrt(), 0.0], [2.0f64.sqrt(), 0.0], 2),
        );
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_conventions() {
        assert_eq!(
            expand(Distance::Cosine, inputs(0.0, [0.0, 0.0], [0.0, 0.0], 2)),
            0.0
        );
        assert_eq!(
            expand(Distance::Cosine, inputs(0.0, [0.0, 0.0], [1.0, 0.0], 2)),
            1.0
        );
    }

    #[test]
    fn correlation_of_identical_vectors_is_zero() {
        // x = y = [1, 2]: Σ=3, ‖·‖²=5, dot=5, k=2
        let d = expand(
            Distance::Correlation,
            inputs(5.0, [3.0, 5.0], [3.0, 5.0], 2),
        );
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn correlation_of_anticorrelated_vectors_is_two() {
        // x = [1, -1], y = [-1, 1]: Σx=0, ‖x‖²=2, dot=-2
        let d = expand(
            Distance::Correlation,
            inputs(-2.0, [0.0, 2.0], [0.0, 2.0], 2),
        );
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_constant_rows_use_guard() {
        // Constant row has k‖x‖² = (Σx)² → zero variance.
        let both = expand(
            Distance::Correlation,
            inputs(1.0, [2.0, 2.0], [2.0, 2.0], 2),
        );
        assert_eq!(both, 0.0);
        let one = expand(
            Distance::Correlation,
            inputs(1.0, [2.0, 2.0], [1.0, 5.0], 2),
        );
        assert_eq!(one, 1.0);
    }

    #[test]
    fn jaccard_binary_case() {
        // x = {1,1,0}, y = {0,1,1}: dot=1, ‖x‖²=2, ‖y‖²=2 → 1 - 1/3
        let d = expand(Distance::Jaccard, inputs(1.0, [2.0, 0.0], [2.0, 0.0], 3));
        assert!((d - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_of_empty_vectors_is_zero() {
        assert_eq!(
            expand(Distance::Jaccard, inputs(0.0, [0.0, 0.0], [0.0, 0.0], 3)),
            0.0
        );
    }

    #[test]
    fn dice_binary_case() {
        // Same sets as above: 1 - 2·1/(2+2) = 0.5
        let d = expand(
            Distance::DiceSorensen,
            inputs(1.0, [2.0, 0.0], [2.0, 0.0], 3),
        );
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hellinger_of_identical_distributions_is_zero() {
        // x = y = [0.5, 0.5]: ⟨√x,√y⟩ = 1, Σx = Σy = 1
        let d = expand(Distance::Hellinger, inputs(1.0, [1.0, 0.0], [1.0, 0.0], 2));
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn hellinger_of_disjoint_distributions_is_one() {
        let d = expand(Distance::Hellinger, inputs(0.0, [1.0, 0.0], [1.0, 0.0], 2));
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn russel_rao_counts_matches() {
        // k = 4, dot = 3 → (4-3)/4
        let d = expand(Distance::RusselRao, ExpansionInputs::dot_only(3.0, 4));
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dot_and_kl_pass_through() {
        assert_eq!(
            expand(Distance::DotProduct, ExpansionInputs::dot_only(7.5, 9)),
            7.5
        );
        assert_eq!(
            expand(Distance::KlDivergence, ExpansionInputs::dot_only(0.4, 9)),
            0.4
        );
    }

    #[test]
    #[should_panic(expected = "NAMM distance")]
    fn namm_distance_panics() {
        expand(Distance::Manhattan, ExpansionInputs::dot_only(1.0, 2));
    }
}
