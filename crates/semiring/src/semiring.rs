//! The semiring type tying the two monoids together (§2.2).

use crate::monoid::Monoid;
use sparse::Real;

/// A semiring `(S, ℝ, {⊕, id⊕}, {⊗, id⊗})` with an explicit statement of
/// whether `⊗` annihilates on `id⊕`.
///
/// * **Annihilating** (`annihilator⊗ = id⊕`, i.e. `⊗(a, 0) = 0`): the
///   product need only be applied to the *intersection* of nonzero
///   columns — the classic sparse dot product, and what GraphBLAS-style
///   packages assume.
/// * **Non-annihilating** (`id⊗ = 0`, no annihilator — the paper's NAMM):
///   `⊗(a, 0) = a`, so the product must be applied over the *union* of
///   nonzero columns, which the hybrid kernel realizes with a second pass
///   (§3.3.1).
///
/// This mirrors the paper's Figure 3 C++ construction API: dot-product
/// based semirings invoke only the product/reduce pair, NAMMs additionally
/// flag the union requirement.
///
/// # Example
///
/// ```
/// use semiring::{Monoid, Semiring};
/// // Ordinary dot product: (ℝ, {+, 0}, {×, 1}) with annihilator 0.
/// let dot = Semiring::<f64>::dot_product();
/// assert!(dot.is_annihilating());
/// // Manhattan NAMM: ⊗ = |a - b| with id⊗ = 0, ⊕ = +.
/// let l1 = Semiring::namm(Monoid::new(|a: f64, b: f64| (a - b).abs(), 0.0), Monoid::plus());
/// assert!(!l1.is_annihilating());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Semiring<T> {
    product: Monoid<T>,
    reduce: Monoid<T>,
    annihilating: bool,
}

impl<T: Real> Semiring<T> {
    /// Builds an *annihilating* semiring: `⊗` only needs the nonzero
    /// intersection. `product.identity()` plays the role of `id⊗` and
    /// `reduce.identity()` of `id⊕ = annihilator⊗`.
    pub fn annihilating(product: Monoid<T>, reduce: Monoid<T>) -> Self {
        Self {
            product,
            reduce,
            annihilating: true,
        }
    }

    /// Builds a *non-annihilating multiplicative monoid* (NAMM) semiring:
    /// `⊗` must run over the full nonzero union and `id⊗ = id⊕ = 0`.
    pub fn namm(product: Monoid<T>, reduce: Monoid<T>) -> Self {
        Self {
            product,
            reduce,
            annihilating: false,
        }
    }

    /// The ordinary dot-product semiring `(ℝ, {+, 0}, {×, 1})`.
    pub fn dot_product() -> Self {
        Self::annihilating(Monoid::times(), Monoid::plus())
    }

    /// The tropical semiring `(ℝ ∪ {+∞}, {min, +∞}, {+, 0})` of
    /// Equation 1 — not a distance, but the classic relaxation example the
    /// paper cites (Viterbi-style dynamic programs).
    pub fn tropical() -> Self {
        Self::annihilating(Monoid::plus(), Monoid::min())
    }

    /// The `⊗` monoid.
    #[inline]
    pub fn product_monoid(&self) -> &Monoid<T> {
        &self.product
    }

    /// The `⊕` monoid.
    #[inline]
    pub fn reduce_monoid(&self) -> &Monoid<T> {
        &self.reduce
    }

    /// Applies `⊗`.
    #[inline]
    pub fn product(&self, a: T, b: T) -> T {
        self.product.apply(a, b)
    }

    /// Applies `⊕`.
    #[inline]
    pub fn reduce(&self, acc: T, v: T) -> T {
        self.reduce.apply(acc, v)
    }

    /// `id⊕` — also the value every output cell starts from.
    #[inline]
    pub fn reduce_identity(&self) -> T {
        self.reduce.identity()
    }

    /// `id⊗`.
    #[inline]
    pub fn product_identity(&self) -> T {
        self.product.identity()
    }

    /// True when `annihilator⊗ = id⊕` (intersection-only evaluation is
    /// sound); false for NAMMs (union evaluation required).
    #[inline]
    pub fn is_annihilating(&self) -> bool {
        self.annihilating
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_semiring_computes_dot() {
        let sr = Semiring::<f64>::dot_product();
        let mut acc = sr.reduce_identity();
        for (a, b) in [(1.0, 2.0), (3.0, 4.0)] {
            acc = sr.reduce(acc, sr.product(a, b));
        }
        assert_eq!(acc, 14.0);
    }

    #[test]
    fn dot_product_annihilates_on_zero() {
        let sr = Semiring::<f32>::dot_product();
        assert_eq!(sr.product(5.0, 0.0), 0.0);
        assert_eq!(sr.product(0.0, 5.0), 0.0);
        assert!(sr.is_annihilating());
    }

    #[test]
    fn namm_does_not_annihilate() {
        let sr = Semiring::namm(
            Monoid::new(|a: f64, b: f64| (a - b).abs(), 0.0),
            Monoid::plus(),
        );
        // ⊗(a, 0) = a, the XOR-like behaviour of Appendix A.1.
        assert_eq!(sr.product(3.0, 0.0), 3.0);
        assert_eq!(sr.product(0.0, 3.0), 3.0);
        assert_eq!(sr.product(3.0, 3.0), 0.0);
        assert!(!sr.is_annihilating());
        assert_eq!(sr.product_identity(), 0.0);
    }

    #[test]
    fn tropical_semiring_solves_min_plus() {
        // Shortest two-hop path: min over j of d1[j] + d2[j].
        let sr = Semiring::<f64>::tropical();
        let d1 = [1.0, 4.0, 2.0];
        let d2 = [5.0, 1.0, 3.0];
        let mut acc = sr.reduce_identity();
        for j in 0..3 {
            acc = sr.reduce(acc, sr.product(d1[j], d2[j]));
        }
        assert_eq!(acc, 5.0); // via j=1 or j=2
    }
}
