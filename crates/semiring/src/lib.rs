//! Semiring algebra and the fifteen distance measures of the paper's
//! Table 1.
//!
//! A *semiring* `(S, ℝ, {⊕, id⊕}, {⊗, id⊗})` generalizes the inner product
//! of a matrix multiply: `⊗` maps pointwise-corresponding vector elements
//! and `⊕` reduces the mapped products to a scalar. With the ordinary dot
//! product (`⊗ = ×` with `annihilator⊗ = 0`), only the *intersection* of
//! nonzero columns contributes. The paper's key algebraic enhancement is
//! the **non-annihilating multiplicative monoid (NAMM)**: `⊗` with
//! `id⊗ = 0` and *no* annihilator, which forces evaluation over the full
//! *union* of nonzero columns and captures distances like Manhattan and
//! Chebyshev that a dot product cannot express.
//!
//! The crate provides:
//!
//! * [`Monoid`] / [`Semiring`] — the algebra, as plain `Copy` values built
//!   from function pointers (mirroring the paper's Figure 3 construction
//!   API).
//! * [`Distance`] — the fifteen measures, each knowing its
//!   [`Family`] (expanded vs NAMM), its semiring, the row norms its
//!   expansion needs, and its expansion/finalization arithmetic.
//! * [`reference`] — exact dense implementations straight from the
//!   "Formula" column of Table 1, the ground truth every kernel is tested
//!   against.
//! * [`namm`] — union-decomposition helpers and the Appendix A.1 worked
//!   example.
//!
//! # The fifteen distances (Table 1)
//!
//! | Distance | Family | `⊗` | `⊕` | Norms | Post-processing |
//! |---|---|---|---|---|---|
//! | Correlation | expanded | `a·b` | `+` | Sum, ‖·‖² | expansion |
//! | Cosine | expanded | `a·b` | `+` | ‖·‖₂ | expansion |
//! | Dice-Sørensen | expanded | `a·b` | `+` | ‖·‖² | expansion |
//! | Dot Product | expanded | `a·b` | `+` | — | — |
//! | Euclidean | expanded | `a·b` | `+` | ‖·‖² | expansion |
//! | Hellinger | expanded | `√(a·b)` | `+` | L1 | expansion |
//! | Jaccard | expanded | `a·b` | `+` | ‖·‖² | expansion |
//! | KL divergence | expanded | `a·ln(a/b)` | `+` | — | — |
//! | Russel-Rao | expanded | `a·b` | `+` | — | expansion |
//! | Canberra | NAMM | `\|a−b\|/(\|a\|+\|b\|)` | `+` | — | — |
//! | Chebyshev | NAMM | `\|a−b\|` | `max` | — | — |
//! | Hamming | NAMM | `a≠b` | `+` | — | `/k` |
//! | Jensen-Shannon | NAMM | `a·ln(a/m)+b·ln(b/m)` | `+` | — | `√(·/2)` |
//! | Manhattan | NAMM | `\|a−b\|` | `+` | — | — |
//! | Minkowski | NAMM | `\|a−b\|^p` | `+` | — | `(·)^{1/p}` |
//!
//! # Example: Manhattan as a semiring (Appendix A.1)
//!
//! ```
//! use semiring::{Distance, DistanceParams, apply_semiring_union};
//!
//! let a = [(0u32, 1.0f64), (2, 1.0)]; // sparse [1, 0, 1]
//! let b = [(1u32, 1.0f64)];           // sparse [0, 1, 0]
//! let params = DistanceParams::default();
//! let sr = Distance::Manhattan.semiring(&params);
//! let acc = apply_semiring_union(&a, &b, &sr);
//! assert_eq!(Distance::Manhattan.finalize(acc, 3, &params), 3.0);
//! ```

#![deny(missing_docs)]

pub mod distance;
pub mod expansion;
pub mod laws;
pub mod monoid;
pub mod namm;
pub mod reference;
pub mod semiring;

pub use distance::{Distance, DistanceParams, Family};
pub use expansion::ExpansionInputs;
pub use laws::{check_monoid, check_semiring, LawViolation};
pub use monoid::Monoid;
pub use namm::{
    apply_semiring_difference, apply_semiring_intersection, apply_semiring_pass,
    apply_semiring_union,
};
pub use semiring::Semiring;
