//! Monoids — the building blocks of semirings (§2.2).

use sparse::Real;

/// Internal representation of a monoid operation: either a plain binary
/// function pointer, or one that also reads a fixed parameter (the
/// Minkowski degree `p` is the motivating case).
#[derive(Debug, Clone, Copy)]
enum Op<T> {
    Plain(fn(T, T) -> T),
    Param(fn(T, T, T) -> T, T),
}

/// A monoid: an associative binary operation with an identity element.
///
/// Monoids are plain `Copy` values built from function pointers so they
/// can be freely captured by simulated GPU kernels without allocation or
/// dynamic dispatch — the same constraint real CUDA kernels place on
/// functors.
///
/// # Example
///
/// ```
/// use semiring::Monoid;
/// let plus = Monoid::<f32>::plus();
/// assert_eq!(plus.apply(2.0, 3.0), 5.0);
/// assert_eq!(plus.identity(), 0.0);
/// let absdiff = Monoid::new(|a: f32, b: f32| (a - b).abs(), 0.0);
/// assert_eq!(absdiff.apply(1.0, 4.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Monoid<T> {
    op: Op<T>,
    identity: T,
}

impl<T: Real> Monoid<T> {
    /// Creates a monoid from a binary operation and its identity.
    pub fn new(op: fn(T, T) -> T, identity: T) -> Self {
        Self {
            op: Op::Plain(op),
            identity,
        }
    }

    /// Creates a monoid whose operation also reads a fixed parameter
    /// (e.g. Minkowski's `p`, passed as the third argument on every
    /// application).
    pub fn with_param(op: fn(T, T, T) -> T, identity: T, param: T) -> Self {
        Self {
            op: Op::Param(op, param),
            identity,
        }
    }

    /// The additive monoid `{+, 0}`.
    pub fn plus() -> Self {
        Self::new(|a, b| a + b, T::ZERO)
    }

    /// The multiplicative monoid `{×, 1}`.
    pub fn times() -> Self {
        Self::new(|a, b| a * b, T::ONE)
    }

    /// The `{max, 0}` monoid used as `⊕` by Chebyshev (term values are
    /// non-negative after the absolute difference, so 0 is an identity).
    pub fn max() -> Self {
        Self::new(|a, b| a.max(b), T::ZERO)
    }

    /// The `{min, +∞}` monoid of the tropical semiring (Equation 1 of the
    /// paper).
    pub fn min() -> Self {
        Self::new(|a, b| a.min(b), T::INFINITY)
    }

    /// Applies the operation.
    #[inline]
    pub fn apply(&self, a: T, b: T) -> T {
        match self.op {
            Op::Plain(f) => f(a, b),
            Op::Param(f, p) => f(a, b, p),
        }
    }

    /// The identity element.
    #[inline]
    pub fn identity(&self) -> T {
        self.identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_monoid_laws<T: Real>(m: &Monoid<T>, samples: &[T], tol: f64) {
        for &a in samples {
            assert!(
                (m.apply(a, m.identity()).to_f64() - a.to_f64()).abs() <= tol,
                "right identity failed for {a}"
            );
            assert!(
                (m.apply(m.identity(), a).to_f64() - a.to_f64()).abs() <= tol,
                "left identity failed for {a}"
            );
            for &b in samples {
                for &c in samples {
                    let l = m.apply(m.apply(a, b), c).to_f64();
                    let r = m.apply(a, m.apply(b, c)).to_f64();
                    assert!((l - r).abs() <= tol, "associativity failed");
                }
            }
        }
    }

    #[test]
    fn plus_is_a_monoid() {
        assert_monoid_laws(&Monoid::<f64>::plus(), &[0.0, 1.0, 2.5, 7.0], 1e-12);
    }

    #[test]
    fn times_is_a_monoid() {
        assert_monoid_laws(&Monoid::<f64>::times(), &[1.0, 2.0, 0.5], 1e-12);
    }

    #[test]
    fn max_is_a_monoid_on_nonnegative_reals() {
        assert_monoid_laws(&Monoid::<f64>::max(), &[0.0, 1.0, 3.0], 0.0);
    }

    #[test]
    fn min_identity_is_infinity() {
        let m = Monoid::<f32>::min();
        assert_eq!(m.apply(5.0, m.identity()), 5.0);
        assert_eq!(m.apply(2.0, 3.0), 2.0);
    }

    #[test]
    fn with_param_threads_parameter() {
        fn powp(a: f64, b: f64, p: f64) -> f64 {
            (a - b).abs().powf(p)
        }
        let m = Monoid::with_param(powp, 0.0, 3.0);
        assert_eq!(m.apply(2.0, 0.0), 8.0);
    }

    #[test]
    fn custom_plain_op_via_fn_pointer_coercion() {
        let absdiff = Monoid::new(|a: f32, b: f32| (a - b).abs(), 0.0);
        assert_eq!(absdiff.apply(1.0, 4.0), 3.0);
        assert_eq!(absdiff.apply(4.0, 1.0), 3.0);
        // id⊗ = 0 makes the op behave like XOR on zero/nonzero patterns
        // (Appendix A.1).
        assert_eq!(absdiff.apply(0.0, 2.0), 2.0);
        assert_eq!(absdiff.apply(2.0, 0.0), 2.0);
    }
}
