//! Algebraic law checking for user-constructed semirings.
//!
//! The Figure 3 API lets downstream users assemble semirings from
//! arbitrary monoids; the laws of §2.2 are then *their* obligation. This
//! module makes the obligations checkable: sample-based verification of
//! monoid laws (associativity, identity), semiring laws (distributivity
//! where meaningful, annihilation), and the NAMM requirements
//! (commutativity of `⊗`, `id⊗ = 0`), so custom algebras can be
//! validated in a test before being launched across a billion cells.

use crate::monoid::Monoid;
use crate::semiring::Semiring;
use sparse::Real;

/// A violated law, with a witness.
#[derive(Debug, Clone, PartialEq)]
pub struct LawViolation {
    /// Which law failed (e.g. "associativity of ⊕").
    pub law: &'static str,
    /// Human-readable witness of the failure.
    pub witness: String,
}

impl std::fmt::Display for LawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.law, self.witness)
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    // Exact equality first: ∞ == ∞ must count as close even though
    // ∞ − ∞ is NaN (tropical identities live at +∞). A finite value is
    // never close to an infinity — the tolerance band would otherwise
    // saturate to ∞ ≤ ∞.
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Checks monoid laws on the given sample points; returns all violations
/// found (empty = no counterexample in the sample).
pub fn check_monoid<T: Real>(m: &Monoid<T>, samples: &[T], tol: f64) -> Vec<LawViolation> {
    let mut out = Vec::new();
    for &a in samples {
        let l = m.apply(m.identity(), a).to_f64();
        let r = m.apply(a, m.identity()).to_f64();
        if !close(l, a.to_f64(), tol) {
            out.push(LawViolation {
                law: "left identity",
                witness: format!("op(id, {a}) = {l} != {a}"),
            });
        }
        if !close(r, a.to_f64(), tol) {
            out.push(LawViolation {
                law: "right identity",
                witness: format!("op({a}, id) = {r} != {a}"),
            });
        }
        for &b in samples {
            for &c in samples {
                let lhs = m.apply(m.apply(a, b), c).to_f64();
                let rhs = m.apply(a, m.apply(b, c)).to_f64();
                if !close(lhs, rhs, tol) {
                    out.push(LawViolation {
                        law: "associativity",
                        witness: format!("(({a}∘{b})∘{c}) = {lhs} != {rhs}"),
                    });
                }
            }
        }
    }
    out
}

/// Checks the semiring obligations of §2.2 on the sample points:
///
/// * `⊕` is a commutative monoid;
/// * annihilating semirings: `⊗(x, 0)` and `⊗(0, x)` equal `id⊕` (the
///   structural zero annihilates), so intersection-only evaluation is
///   sound;
/// * NAMMs: `id⊗ = 0`, and `⊗` commutes (the §2.2 requirement for union
///   evaluation in metric spaces).
pub fn check_semiring<T: Real>(sr: &Semiring<T>, samples: &[T], tol: f64) -> Vec<LawViolation> {
    let mut out = check_monoid(sr.reduce_monoid(), samples, tol);
    for &a in samples {
        for &b in samples {
            let lhs = sr.reduce(a, b).to_f64();
            let rhs = sr.reduce(b, a).to_f64();
            if !close(lhs, rhs, tol) {
                out.push(LawViolation {
                    law: "commutativity of ⊕",
                    witness: format!("{a}⊕{b} = {lhs} != {rhs}"),
                });
            }
        }
    }
    if sr.is_annihilating() {
        let id = sr.reduce_identity().to_f64();
        for &a in samples {
            let l = sr.product(a, T::ZERO).to_f64();
            let r = sr.product(T::ZERO, a).to_f64();
            if !close(l, id, tol) || !close(r, id, tol) {
                out.push(LawViolation {
                    law: "annihilation on the structural zero",
                    witness: format!("⊗({a}, 0) = {l}, ⊗(0, {a}) = {r}, id⊕ = {id}"),
                });
            }
        }
    } else {
        if sr.product_identity() != T::ZERO {
            out.push(LawViolation {
                law: "NAMM identity (id⊗ = 0)",
                witness: format!("id⊗ = {}", sr.product_identity()),
            });
        }
        for &a in samples {
            for &b in samples {
                let lhs = sr.product(a, b).to_f64();
                let rhs = sr.product(b, a).to_f64();
                if !close(lhs, rhs, tol) {
                    out.push(LawViolation {
                        law: "commutativity of ⊗ (NAMM)",
                        witness: format!("⊗({a},{b}) = {lhs} != {rhs}"),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Distance, DistanceParams, Family};

    fn samples() -> Vec<f64> {
        vec![0.0, 0.25, 1.0, 2.5, 7.0]
    }

    #[test]
    fn every_table1_semiring_passes_its_laws() {
        let params = DistanceParams { minkowski_p: 3.0 };
        for d in Distance::ALL {
            // Note KL's ⊗ is deliberately asymmetric ("makes no further
            // assumption of symmetry") but KL is in the annihilating
            // family, where commutativity is not an obligation — only
            // NAMMs get the symmetry check.
            let sr = d.semiring::<f64>(&params);
            let violations = check_semiring(&sr, &samples(), 1e-9);
            assert!(violations.is_empty(), "{d}: {violations:?}");
            if d.family() == Family::Namm {
                assert!(!sr.is_annihilating());
            }
        }
    }

    #[test]
    fn tropical_semiring_passes() {
        let sr = Semiring::<f64>::tropical();
        // Tropical ⊕ = min with id +∞; include the identity in samples.
        let mut s = samples();
        s.push(f64::INFINITY);
        // Annihilation check: ⊗(x, 0) = x + 0 = x ≠ +∞ — tropical is the
        // paper's "relaxed" case where the structural zero is id⊗, not
        // the annihilator. The checker must flag it.
        let violations = check_semiring(&sr, &s, 1e-9);
        assert!(violations
            .iter()
            .all(|v| v.law == "annihilation on the structural zero"));
        assert!(!violations.is_empty());
    }

    #[test]
    fn broken_monoid_is_caught() {
        // Subtraction: not associative, identity only on the right.
        let sub = Monoid::new(|a: f64, b: f64| a - b, 0.0);
        let v = check_monoid(&sub, &samples(), 1e-9);
        assert!(v.iter().any(|x| x.law == "associativity"));
        assert!(v.iter().any(|x| x.law == "left identity"));
    }

    #[test]
    fn non_commutative_namm_is_caught() {
        let bad = Semiring::namm(Monoid::new(|a: f64, b: f64| a - b, 0.0), Monoid::plus());
        let v = check_semiring(&bad, &samples(), 1e-9);
        assert!(v.iter().any(|x| x.law == "commutativity of ⊗ (NAMM)"));
    }

    #[test]
    fn violation_displays_read_well() {
        let v = LawViolation {
            law: "associativity",
            witness: "((1∘2)∘3) = 0 != 2".into(),
        };
        assert_eq!(v.to_string(), "associativity violated: ((1∘2)∘3) = 0 != 2");
    }
}
