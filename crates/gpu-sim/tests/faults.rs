//! Integration tests for deterministic fault injection and the launch
//! watchdog (ISSUE 3 tentpole, gpu-sim layer).

use gpu_sim::{lanes_from_fn, Device, FaultPlan, LaunchConfig, SimError, SmemHashTable};

/// A small copy kernel used as the common launch body.
fn copy_kernel(dev: &Device) -> Result<gpu_sim::LaunchStats, SimError> {
    let xs = dev.buffer_from_slice(&[1.0f32; 128]);
    let out = dev.buffer::<f32>(128);
    dev.try_launch("copy", LaunchConfig::new(1, 128, 0), |block| {
        block.run_warps(|w| {
            let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
            let v = w.global_gather(&xs, &idx);
            w.global_scatter(&out, &idx, &v);
        });
    })
}

#[test]
fn unarmed_plan_is_byte_identical_to_no_plan() {
    let plain = Device::volta();
    let armed_off = Device::volta().with_fault_plan(FaultPlan::none());
    let a = copy_kernel(&plain).expect("plain launch");
    let b = copy_kernel(&armed_off).expect("FaultPlan::none launch");
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.cost.total_seconds, b.cost.total_seconds);
}

#[test]
fn transient_launch_failure_is_typed_and_deterministic() {
    let plan = FaultPlan::seeded(7).with_transient_launch_failures(1000);
    let dev = Device::volta().with_fault_plan(plan.clone());
    match copy_kernel(&dev) {
        Err(SimError::TransientFault { kernel, detail }) => {
            assert_eq!(kernel, "copy");
            assert!(detail.contains("transient launch failure"), "{detail}");
        }
        other => panic!("expected TransientFault, got {other:?}"),
    }
    // Same seed ⇒ the same launch ordinal rolls the same way on a fresh
    // device.
    let dev2 = Device::volta().with_fault_plan(plan);
    assert!(matches!(
        copy_kernel(&dev2),
        Err(SimError::TransientFault { .. })
    ));
}

#[test]
fn partial_transient_rate_eventually_succeeds_on_retry() {
    let dev =
        Device::volta().with_fault_plan(FaultPlan::seeded(3).with_transient_launch_failures(500));
    let mut outcomes = Vec::new();
    for _ in 0..16 {
        outcomes.push(copy_kernel(&dev).is_ok());
    }
    assert!(outcomes.iter().any(|&ok| ok), "some launch should succeed");
    assert!(outcomes.iter().any(|&ok| !ok), "some launch should fail");
    // Determinism: a fresh device with the same seed replays the exact
    // outcome sequence.
    let dev2 =
        Device::volta().with_fault_plan(FaultPlan::seeded(3).with_transient_launch_failures(500));
    let replay: Vec<bool> = (0..16).map(|_| copy_kernel(&dev2).is_ok()).collect();
    assert_eq!(outcomes, replay);
}

#[test]
fn injected_smem_alloc_failure_is_capacity_overflow() {
    let dev = Device::volta().with_fault_plan(FaultPlan::seeded(11).with_smem_alloc_failures(1000));
    let err = dev
        .try_launch("alloc", LaunchConfig::new(1, 32, 4096), |block| {
            let _ = block.alloc_shared::<f32>(256);
            block.run_warps(|w| w.issue(1));
        })
        .expect_err("injected smem failure");
    match err {
        SimError::CapacityOverflow {
            kernel, resource, ..
        } => {
            assert_eq!(kernel, "alloc");
            assert_eq!(resource, "smem-allocator");
        }
        other => panic!("expected CapacityOverflow, got {other:?}"),
    }
}

#[test]
fn injected_hash_overflow_is_capacity_overflow() {
    let dev = Device::volta().with_fault_plan(FaultPlan::seeded(5).with_hash_overflows(1000));
    let err = dev
        .try_launch("hash", LaunchConfig::new(1, 32, 48 * 1024), |block| {
            let table = SmemHashTable::<f32>::new(block, 128);
            let t = table.clone();
            block.run_warps(|w| {
                let keys = lanes_from_fn(|l| Some(l as u32));
                let vals = lanes_from_fn(|l| l as f32);
                t.insert_warp(w, &keys, &vals);
            });
        })
        .expect_err("injected hash overflow");
    match err {
        SimError::CapacityOverflow {
            kernel,
            resource,
            detail,
        } => {
            assert_eq!(kernel, "hash");
            assert_eq!(resource, "smem-hash-table");
            assert!(detail.contains("injected insert overflow"), "{detail}");
        }
        other => panic!("expected CapacityOverflow, got {other:?}"),
    }
}

#[test]
fn real_hash_overflow_is_typed_under_try_launch() {
    let dev = Device::volta();
    let err = dev
        .try_launch("hash", LaunchConfig::new(1, 32, 48 * 1024), |block| {
            let table = SmemHashTable::<f32>::new(block, 32);
            let t = table.clone();
            block.run_warps(|w| {
                for round in 0..2 {
                    let keys = lanes_from_fn(|l| Some((round * 32 + l) as u32));
                    let vals = lanes_from_fn(|_| 0.0f32);
                    t.insert_warp(w, &keys, &vals);
                }
            });
        })
        .expect_err("overfull table");
    match err {
        SimError::CapacityOverflow { detail, .. } => {
            assert!(
                detail.contains("shared-memory hash table is full (capacity 32)"),
                "{detail}"
            );
        }
        other => panic!("expected CapacityOverflow, got {other:?}"),
    }
}

#[test]
fn bit_flip_on_labeled_buffer_reports_ecc_event() {
    let dev =
        Device::volta().with_fault_plan(FaultPlan::seeded(21).with_bit_flips("csr.values", 1000));
    let xs = dev
        .buffer_from_slice(&[1.0f32; 64])
        .with_label("csr.values");
    let out = dev.buffer::<f32>(64);
    let err = dev
        .try_launch("flip", LaunchConfig::new(1, 64, 0), |block| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
                let v = w.global_gather(&xs, &idx);
                w.global_scatter(&out, &idx, &v);
            });
        })
        .expect_err("flip on labeled buffer");
    match err {
        SimError::TransientFault { detail, .. } => {
            assert!(detail.contains("single-bit upset"), "{detail}");
            assert!(detail.contains("csr.values"), "{detail}");
        }
        other => panic!("expected TransientFault, got {other:?}"),
    }
    // ECC-corrected model: storage is never mutated, so the data is
    // intact for the retry.
    assert_eq!(xs.to_vec(), vec![1.0f32; 64]);
}

#[test]
fn bit_flip_ignores_unlabeled_and_differently_labeled_buffers() {
    let dev =
        Device::volta().with_fault_plan(FaultPlan::seeded(21).with_bit_flips("csr.values", 1000));
    let xs = dev
        .buffer_from_slice(&[1.0f32; 64])
        .with_label("coo.values");
    let out = dev.buffer::<f32>(64);
    dev.try_launch("flip", LaunchConfig::new(1, 64, 0), |block| {
        block.run_warps(|w| {
            let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
            let v = w.global_gather(&xs, &idx);
            w.global_scatter(&out, &idx, &v);
        });
    })
    .expect("no matching buffer, no fault");
}

#[test]
fn watchdog_converts_livelock_into_typed_timeout() {
    let dev = Device::volta();
    let err = dev
        .try_launch(
            "livelock",
            LaunchConfig::new(1, 32, 0).with_watchdog(10_000),
            |block| {
                block.run_warps(|w| loop {
                    w.issue(1);
                });
            },
        )
        .expect_err("livelocked kernel");
    match err {
        SimError::WatchdogTimeout { kernel, budget } => {
            assert_eq!(kernel, "livelock");
            assert_eq!(budget, 10_000);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

#[test]
fn watchdog_passes_well_behaved_launches() {
    let dev = Device::volta().with_watchdog(1_000_000);
    copy_kernel(&dev).expect("well within budget");
}

#[test]
fn device_wide_watchdog_applies_when_config_has_none() {
    let dev = Device::volta().with_watchdog(100);
    let err = dev
        .try_launch("livelock", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| loop {
                w.issue(1);
            });
        })
        .expect_err("device-wide watchdog");
    assert!(matches!(err, SimError::WatchdogTimeout { budget: 100, .. }));
}

#[test]
fn watchdog_budget_derives_from_cost_model() {
    let dev = Device::volta();
    let config = LaunchConfig::new(8, 128, 0);
    let tight = dev.watchdog_budget(&config, 1e-6);
    let loose = dev.watchdog_budget(&config, 1e-3);
    assert!(tight >= 1);
    assert!(loose > tight, "{loose} vs {tight}");
}

#[test]
fn livelocked_hash_probe_terminates_via_watchdog() {
    // A full table probed with an absent key would historically re-probe
    // forever in a real livelock; the watchdog converts any such runaway
    // loop into a typed timeout. (The table itself also bounds probes,
    // so this drives the loop directly.)
    let dev = Device::volta();
    let budget = dev
        .watchdog_budget(&LaunchConfig::new(1, 32, 48 * 1024), 1e-7)
        .max(64);
    let err = dev
        .try_launch(
            "probe-livelock",
            LaunchConfig::new(1, 32, 48 * 1024).with_watchdog(budget),
            |block| {
                let table = SmemHashTable::<f32>::new(block, 64);
                let t = table.clone();
                block.run_warps(|w| {
                    let keys = lanes_from_fn(|l| Some(l as u32));
                    let vals = lanes_from_fn(|l| l as f32);
                    t.insert_warp(w, &keys, &vals);
                    // Hammer lookups until the budget trips.
                    loop {
                        let probe = lanes_from_fn(|l| Some((1000 + l) as u32));
                        let _ = t.lookup_warp(w, &probe);
                    }
                });
            },
        )
        .expect_err("runaway probe loop");
    assert!(matches!(err, SimError::WatchdogTimeout { .. }));
}

#[test]
fn same_seed_same_faults_across_fault_classes() {
    let make = || {
        Device::volta().with_fault_plan(
            FaultPlan::seeded(99)
                .with_transient_launch_failures(200)
                .with_smem_alloc_failures(200)
                .with_hash_overflows(200),
        )
    };
    let run = |dev: &Device| -> Vec<String> {
        (0..12)
            .map(|_| {
                dev.try_launch("mix", LaunchConfig::new(1, 32, 48 * 1024), |block| {
                    let table = SmemHashTable::<f32>::new(block, 64);
                    let t = table.clone();
                    block.run_warps(|w| {
                        let keys = lanes_from_fn(|l| Some(l as u32));
                        let vals = lanes_from_fn(|l| l as f32);
                        t.insert_warp(w, &keys, &vals);
                    });
                })
                .map(|_| "ok".to_string())
                .unwrap_or_else(|e| e.to_string())
            })
            .collect()
    };
    let a = run(&make());
    let b = run(&make());
    assert_eq!(a, b);
    assert!(a.iter().any(|s| s != "ok"), "faults should fire at 200‰");
    assert!(a.iter().any(|s| s == "ok"), "some launches should pass");
}
