//! Block- and warp-level primitives (sorting networks, etc.).

pub mod search;
pub mod sort;

pub use search::warp_binary_search;
pub use sort::bitonic_sort_by_key;
