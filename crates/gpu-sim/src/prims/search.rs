//! Warp-level binary search over sorted global memory.
//!
//! Used by the hybrid strategy wherever shared memory cannot answer a
//! membership question definitively: confirming bloom-filter hits
//! (§3.3.2) and resolving hash-table misses for partitioned high-degree
//! rows (§3.3.3). Each active lane bisects the same sorted global range
//! in lockstep; every probe round is one (generally uncoalesced) gather,
//! which is exactly the cost the paper trades for scale.

use crate::global::GlobalBuffer;
use crate::warp::{lanes_from_fn, Lanes, WarpCtx, WARP_SIZE};

/// Searches `sorted[start..end]` for each active lane's key.
///
/// Returns, per lane, the absolute index of the key within the buffer
/// (`Some(i)` with `sorted[i] == key`) or `None` when absent or the lane
/// was inactive.
pub fn warp_binary_search(
    w: &mut WarpCtx,
    sorted: &GlobalBuffer<u32>,
    start: usize,
    end: usize,
    keys: &Lanes<Option<u32>>,
) -> Lanes<Option<usize>> {
    let mut lo = [start; WARP_SIZE];
    let mut hi = [end; WARP_SIZE];
    let mut result: Lanes<Option<usize>> = [None; WARP_SIZE];
    let mut live = lanes_from_fn(|l| keys[l].is_some() && start < end);

    while live.iter().any(|&a| a) {
        let mid_idx = lanes_from_fn(|l| live[l].then(|| (lo[l] + hi[l]) / 2));
        let mid_val = w.global_gather(sorted, &mid_idx);
        w.issue(2); // compare + pointer update
        for l in 0..WARP_SIZE {
            if !live[l] {
                continue;
            }
            let Some(key) = keys[l] else {
                // A live lane without a key means the lane state was
                // corrupted; record and retire the lane instead of
                // panicking the host.
                w.record_corrupted_lane(format!("binary-search lane {l} live without a key"));
                live[l] = false;
                continue;
            };
            let mid = (lo[l] + hi[l]) / 2;
            match mid_val[l].cmp(&key) {
                std::cmp::Ordering::Equal => {
                    result[l] = Some(mid);
                    live[l] = false;
                }
                std::cmp::Ordering::Less => {
                    lo[l] = mid + 1;
                    if lo[l] >= hi[l] {
                        live[l] = false;
                    }
                }
                std::cmp::Ordering::Greater => {
                    hi[l] = mid;
                    if lo[l] >= hi[l] {
                        live[l] = false;
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, LaunchConfig};

    #[test]
    fn finds_present_keys_and_rejects_absent() {
        let dev = Device::volta();
        let data: Vec<u32> = (0..100).map(|i| i * 3).collect(); // 0,3,...,297
        let buf = dev.buffer_from_slice(&data);
        dev.launch("search", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                let keys = lanes_from_fn(|l| Some((l * 9) as u32)); // multiples of 9 ⊂ multiples of 3
                let found = warp_binary_search(w, &buf, 0, 100, &keys);
                for l in 0..WARP_SIZE {
                    let idx = found[l].expect("multiple of 3 present");
                    assert_eq!(buf.host_get(idx), (l * 9) as u32);
                }
                let missing = lanes_from_fn(|l| Some((l * 3 + 1) as u32));
                let found = warp_binary_search(w, &buf, 0, 100, &missing);
                assert!(found.iter().all(Option::is_none));
            });
        });
    }

    #[test]
    fn respects_subrange() {
        let dev = Device::volta();
        let buf = dev.buffer_from_slice(&[1u32, 5, 9, 12, 20, 33]);
        dev.launch("search", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                let mut keys = [None; WARP_SIZE];
                keys[0] = Some(1); // outside [2, 5)
                keys[1] = Some(9); // inside
                let found = warp_binary_search(w, &buf, 2, 5, &keys);
                assert_eq!(found[0], None);
                assert_eq!(found[1], Some(2));
            });
        });
    }

    #[test]
    fn empty_range_returns_none() {
        let dev = Device::volta();
        let buf = dev.buffer_from_slice(&[1u32, 2, 3]);
        dev.launch("search", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                let keys = lanes_from_fn(|_| Some(2u32));
                let found = warp_binary_search(w, &buf, 1, 1, &keys);
                assert!(found.iter().all(Option::is_none));
            });
        });
    }

    #[test]
    fn cost_is_logarithmic_gathers() {
        let dev = Device::volta();
        let data: Vec<u32> = (0..1024).collect();
        let buf = dev.buffer_from_slice(&data);
        let stats = dev.launch("search", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                let keys = lanes_from_fn(|l| Some(l as u32 * 31 + 7));
                let _ = warp_binary_search(w, &buf, 0, 1024, &keys);
            });
        });
        // ≤ ~log2(1024) + 1 = 11 probe rounds, each one gather issue +
        // two ALU issues.
        assert!(
            stats.counters.issues <= 11 * 3 + 5,
            "{}",
            stats.counters.issues
        );
        assert!(stats.counters.global_transactions >= 10);
    }
}
