//! Block-level bitonic sort-by-key in shared memory.
//!
//! The expand-sort-contract strategy (Alg 1, §3.2.1) concatenates two
//! CSR rows in shared memory and sorts them by column before contracting
//! duplicates. The paper tried "several efficient sorting algorithms on
//! the GPU including the popular radix sort and bitonic sorting networks"
//! and found "the sorting step dominated the performance of the
//! algorithm" — this module makes that cost measurable.
//!
//! The sort is *functionally* performed on the backing storage while the
//! cost of the full bitonic network — `n/2 · log₂n · (log₂n+1)/2`
//! compare-exchange operations, each a shared-memory read-modify-write
//! executed a warp at a time — is charged analytically to the block's
//! counters.

use crate::device::BlockCtx;
use crate::shared::SharedArray;
use crate::warp::WARP_SIZE;

/// Sorts the first `n` `(key, value)` pairs held in two parallel
/// shared-memory arrays by ascending key, charging the block for the
/// bitonic network that a real kernel would execute with
/// `block.threads()` threads.
///
/// # Panics
///
/// Panics if `n` exceeds either array's length.
pub fn bitonic_sort_by_key<T: Copy + Default>(
    block: &mut BlockCtx,
    keys: &SharedArray<u32>,
    vals: &SharedArray<T>,
    n: usize,
) {
    assert!(
        n <= keys.len() && n <= vals.len(),
        "sort range out of bounds"
    );
    if n <= 1 {
        return;
    }

    // Cost of the network on the padded power-of-two size.
    let padded = n.next_power_of_two() as u64;
    let log = padded.trailing_zeros() as u64;
    let stages = log * (log + 1) / 2;
    let compare_exchanges = (padded / 2) * stages;
    // Each compare-exchange: 2 smem reads + compare + conditional 2
    // writes, executed WARP_SIZE lanes at a time across the block's
    // threads.
    let warp_ops = compare_exchanges.div_ceil(WARP_SIZE as u64);
    let threads = block.threads().max(WARP_SIZE) as u64;
    // Warps execute the ops concurrently within the block; the block
    // still *issues* every op, and barriers separate the stages.
    // counters-lint: begin-allow(analytic-network-cost): the bitonic network's cost is charged in closed form above, not op-by-op
    let c = block.counters_mut();
    c.issues += warp_ops * 5;
    c.smem_accesses += warp_ops * 4;
    c.barriers += stages;
    c.issues += stages * (threads / WARP_SIZE as u64);
    // counters-lint: end-allow

    // Functional effect: a stable sort of the (key, value) pairs.
    // smem-lint: begin-allow(serialized-emulation): traffic is charged in aggregate by the analytic network model above
    keys.with_mut(|k| {
        vals.with_mut(|v| {
            let mut pairs: Vec<(u32, T)> =
                k[..n].iter().copied().zip(v[..n].iter().copied()).collect();
            pairs.sort_by_key(|&(key, _)| key);
            for (i, (key, val)) in pairs.into_iter().enumerate() {
                k[i] = key;
                v[i] = val;
            }
        })
    });
    // smem-lint: end-allow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, LaunchConfig};

    #[test]
    fn sorts_pairs_by_key() {
        let dev = Device::volta();
        dev.launch("sort", LaunchConfig::new(1, 64, 8 * 1024), |block| {
            let keys = block.alloc_shared::<u32>(8);
            let vals = block.alloc_shared::<f32>(8);
            let input = [(5u32, 50.0f32), (1, 10.0), (3, 30.0), (2, 20.0), (4, 40.0)];
            for (i, (k, v)) in input.iter().enumerate() {
                keys.write(i, *k);
                vals.write(i, *v);
            }
            bitonic_sort_by_key(block, &keys, &vals, 5);
            assert_eq!(&keys.snapshot()[..5], &[1, 2, 3, 4, 5]);
            assert_eq!(&vals.snapshot()[..5], &[10.0, 20.0, 30.0, 40.0, 50.0]);
        });
    }

    #[test]
    fn cost_grows_superlinearly() {
        let dev = Device::volta();
        let mut issues = [0u64; 2];
        for (slot, n) in [(0usize, 64usize), (1, 1024)] {
            let stats = dev.launch("sort", LaunchConfig::new(1, 256, 32 * 1024), |block| {
                let keys = block.alloc_shared::<u32>(n);
                let vals = block.alloc_shared::<f32>(n);
                for i in 0..n {
                    keys.write(i, (n - i) as u32);
                }
                bitonic_sort_by_key(block, &keys, &vals, n);
            });
            issues[slot] = stats.counters.issues;
        }
        // 16x the data must cost more than 16x the issues (n log² n).
        assert!(issues[1] > issues[0] * 16, "{issues:?}");
    }

    #[test]
    fn fuzz_sort_matches_std_sort() {
        use crate::murmur::murmur3_32;
        let dev = Device::volta();
        for seed in 0..30u32 {
            dev.launch("sort", LaunchConfig::new(1, 64, 32 * 1024), |block| {
                let n = 1 + (murmur3_32(seed, 9) % 300) as usize;
                let keys = block.alloc_shared::<u32>(n);
                let vals = block.alloc_shared::<f32>(n);
                let mut expect: Vec<(u32, f32)> = Vec::with_capacity(n);
                for i in 0..n {
                    let k = murmur3_32(i as u32, seed) % 64;
                    keys.write(i, k);
                    vals.write(i, i as f32);
                    expect.push((k, i as f32));
                }
                bitonic_sort_by_key(block, &keys, &vals, n);
                expect.sort_by_key(|&(k, _)| k);
                let got_k = keys.snapshot();
                for (i, &(k, _)) in expect.iter().enumerate() {
                    assert_eq!(got_k[i], k, "seed {seed} slot {i}");
                }
                // Values stay paired with their keys (stability is not
                // required, membership per key is).
                let got_v = vals.snapshot();
                for i in 0..n {
                    let k = got_k[i];
                    let orig = got_v[i] as usize;
                    assert_eq!(murmur3_32(orig as u32, seed) % 64, k, "pairing broken");
                }
            });
        }
    }

    #[test]
    fn empty_and_single_are_noops() {
        let dev = Device::volta();
        let stats = dev.launch("sort", LaunchConfig::new(1, 32, 1024), |block| {
            let keys = block.alloc_shared::<u32>(4);
            let vals = block.alloc_shared::<f32>(4);
            bitonic_sort_by_key(block, &keys, &vals, 0);
            bitonic_sort_by_key(block, &keys, &vals, 1);
        });
        assert_eq!(stats.counters.issues, 0);
    }
}
