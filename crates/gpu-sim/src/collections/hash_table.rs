//! Per-block shared-memory hash table (§3.3.2).
//!
//! "Unlike many other hash table implementations on the GPU ... our
//! implementation builds an independent hash table per thread-block", with
//! a Murmur hash and linear probing. Keys and values are stored together
//! "to avoid an additional costly lookup to global memory", which is why
//! the table costs twice the shared memory of a bare column list.

use crate::device::BlockCtx;
use crate::murmur::murmur3_32;
use crate::shared::SharedArray;
use crate::warp::{lanes_from_fn, Lanes, WarpCtx, WARP_SIZE};

/// Sentinel marking an empty slot (no real column index is `u32::MAX`).
const EMPTY: u32 = u32::MAX;

/// Load factor above which probe chains degrade (§3.3.2: "Hash tables
/// have the best performance when the number of entries is less than 50%
/// of the capacity").
pub const MAX_LOAD: f64 = 0.5;

/// A per-block open-addressing hash table in shared memory, mapping `u32`
/// column indices to values.
#[derive(Debug, Clone)]
pub struct SmemHashTable<T> {
    keys: SharedArray<u32>,
    vals: SharedArray<T>,
    capacity: usize,
    seed: u32,
}

impl<T: Copy + Default> SmemHashTable<T> {
    /// Smallest warp-aligned capacity that keeps `entries` at or under
    /// [`MAX_LOAD`].
    pub fn capacity_for(entries: usize) -> usize {
        ((entries as f64 / MAX_LOAD).ceil() as usize)
            .next_multiple_of(WARP_SIZE)
            .max(WARP_SIZE)
    }

    /// Shared-memory bytes a table of `capacity` slots consumes (keys and
    /// values stored together — the factor-of-two cost §3.3.2 mentions).
    pub fn smem_bytes(capacity: usize) -> usize {
        capacity * (std::mem::size_of::<u32>() + std::mem::size_of::<T>())
    }

    /// Allocates the table from the block's shared memory and
    /// cost-accounts the block-collective fill of the key array with the
    /// empty sentinel (values need no fill: a slot's value is only read
    /// after its key matched, i.e. after an insert wrote it).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or if the block's shared-memory
    /// budget is exceeded.
    pub fn new(block: &mut BlockCtx, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let keys = block.alloc_shared::<u32>(capacity);
        block.fill_shared(&keys, EMPTY);
        let vals = block.alloc_shared::<T>(capacity);
        Self {
            keys,
            vals,
            capacity,
            seed: 0x5eed0_u32,
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of occupied slots (host-side inspection).
    pub fn len(&self) -> usize {
        self.keys.snapshot().iter().filter(|&&k| k != EMPTY).count()
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupied fraction of the table.
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity as f64
    }

    #[inline]
    fn slot(&self, key: u32, probe: usize) -> usize {
        (murmur3_32(key, self.seed) as usize % self.capacity + probe) % self.capacity
    }

    /// Warp-parallel insert: each active lane inserts one `(key, value)`
    /// pair by linear probing. Probe rounds execute in lockstep, so the
    /// warp pays for the *longest* chain — the serialization §3.3.2
    /// blames on load factors above 50 %.
    ///
    /// Keys are assumed distinct (CSR columns within a row are); inserting
    /// a duplicate key overwrites the stored value.
    ///
    /// # Errors
    ///
    /// When a probe chain exhausts the table (the table is full) the warp
    /// records a [`crate::SimError::CapacityOverflow`] launch fault and
    /// drops the remaining pending keys; `Device::try_launch` surfaces it
    /// as a typed error (and the panicking `Device::launch` wrapper turns
    /// it into a panic). Strategies must size with [`Self::capacity_for`]
    /// or partition high-degree rows (§3.3.3).
    pub fn insert_warp(&self, w: &mut WarpCtx, keys: &Lanes<Option<u32>>, vals: &Lanes<T>) {
        if w.take_injected_hash_overflow() {
            w.record_capacity_overflow(
                "smem-hash-table",
                format!("injected insert overflow (capacity {})", self.capacity),
            );
            return;
        }
        let mut pending = *keys;
        for probe in 0..=self.capacity {
            if pending.iter().all(Option::is_none) {
                return;
            }
            if probe == self.capacity {
                // Probe chain exhausted every slot: the table is full.
                // Record the overflow and drop the still-pending keys so
                // the launch limps to a typed error instead of panicking
                // the host.
                w.record_capacity_overflow(
                    "smem-hash-table",
                    format!(
                        "shared-memory hash table is full (capacity {})",
                        self.capacity
                    ),
                );
                return;
            }
            let idx = lanes_from_fn(|l| pending[l].map(|k| self.slot(k, probe)));
            // Each lane claims its slot with an `atomicCAS` on the key
            // word; the returned old value tells it whether it won the
            // slot (`EMPTY`), found its key already present (a duplicate
            // insert), or lost to another key and must keep probing.
            // Because the claim is atomic, concurrent inserts from other
            // warps are race-free.
            let cas_keys = lanes_from_fn(|l| pending[l].unwrap_or(EMPTY));
            let old = w.smem_atomic(&self.keys, &idx, &cas_keys, |cur, new| {
                if cur == EMPTY {
                    new
                } else {
                    cur
                }
            });
            // One probe round = CAS + compare + conditional value write.
            w.issue(1);
            let mut write_idx = [None; WARP_SIZE];
            let mut write_vals = [T::default(); WARP_SIZE];
            for l in 0..WARP_SIZE {
                if let Some(k) = pending[l] {
                    let Some(i) = idx[l] else {
                        // An active lane without a probe slot means the
                        // lane state was corrupted; record it and drop
                        // the lane instead of panicking the host.
                        w.record_corrupted_lane(format!(
                            "hash-table insert lane {l} active without a probe slot"
                        ));
                        pending[l] = None;
                        continue;
                    };
                    if old[l] == EMPTY || old[l] == k {
                        write_idx[l] = Some(i);
                        write_vals[l] = vals[l];
                        pending[l] = None;
                    }
                }
            }
            if write_idx.iter().any(Option::is_some) {
                // The CAS made the claimed slots exclusive, so the value
                // store is a plain scatter.
                w.smem_scatter(&self.vals, &write_idx, &write_vals);
            }
            // Lanes that must keep probing diverge from those that are
            // done.
            if pending.iter().any(Option::is_some)
                && pending.iter().filter(|p| p.is_some()).count()
                    != keys.iter().filter(|p| p.is_some()).count()
            {
                w.diverge(2);
            }
        }
    }

    /// Warp-parallel lookup: returns each active lane's value, or `None`
    /// when the key is absent. Absent keys probe until the first empty
    /// slot — the "increase in lookup times for columns even for elements
    /// that aren't in the table" that motivated the bloom-filter
    /// alternative.
    pub fn lookup_warp(&self, w: &mut WarpCtx, keys: &Lanes<Option<u32>>) -> Lanes<Option<T>> {
        let mut pending = *keys;
        let mut out = [None; WARP_SIZE];
        for probe in 0..=self.capacity {
            if pending.iter().all(Option::is_none) {
                break;
            }
            if probe == self.capacity {
                break; // full table, key absent everywhere
            }
            let idx = lanes_from_fn(|l| pending[l].map(|k| self.slot(k, probe)));
            let found = w.smem_gather(&self.keys, &idx);
            w.issue(1);
            for l in 0..WARP_SIZE {
                if let Some(k) = pending[l] {
                    if found[l] == k {
                        let Some(i) = idx[l] else {
                            w.record_corrupted_lane(format!(
                                "hash-table lookup lane {l} active without a probe slot"
                            ));
                            pending[l] = None;
                            continue;
                        };
                        out[l] = Some(self.vals.read(i));
                        pending[l] = None;
                    } else if found[l] == EMPTY {
                        pending[l] = None; // definitively absent
                    }
                }
            }
        }
        // Charge one value-read access for the hits. The recomputed slot
        // walk is bounded by the capacity: a hit whose key can no longer
        // be found indicates corrupted table state and is recorded as a
        // fault rather than spinning forever.
        let mut hit_idx: Lanes<Option<usize>> = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if out[l].is_none() {
                continue;
            }
            let Some(k) = keys[l] else { continue };
            // Recompute final slot for bank accounting only.
            let mut slot = None;
            for p in 0..self.capacity {
                let s = self.slot(k, p);
                if self.keys.read(s) == k {
                    slot = Some(s);
                    break;
                }
            }
            if slot.is_none() {
                w.record_corrupted_lane(format!(
                    "hash-table hit for key {k} that is no longer present (capacity {})",
                    self.capacity
                ));
            }
            hit_idx[l] = slot;
        }
        if hit_idx.iter().any(Option::is_some) {
            let _ = w.smem_gather(&self.vals, &hit_idx);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, LaunchConfig};

    fn run_in_block(f: impl Fn(&mut BlockCtx) + Sync) {
        let dev = Device::volta();
        dev.launch("test", LaunchConfig::new(1, 32, 64 * 1024), f);
    }

    #[test]
    fn capacity_for_keeps_load_under_half() {
        assert_eq!(SmemHashTable::<f32>::capacity_for(10), 32);
        assert_eq!(SmemHashTable::<f32>::capacity_for(100), 224);
        assert_eq!(SmemHashTable::<f32>::capacity_for(128), 256);
        assert!(SmemHashTable::<f32>::capacity_for(1) >= WARP_SIZE);
        // The paper's Volta limit: a 48 KiB budget at 8 bytes/slot gives
        // 6144 slots → "max degree of 3K" at 50% load.
        let slots = 48 * 1024 / SmemHashTable::<f32>::smem_bytes(1);
        assert_eq!(slots / 2, 3072);
    }

    #[test]
    fn smem_bytes_counts_keys_and_values() {
        // The factor-of-two cost: 256 slots × (4 + 4) bytes for f32.
        assert_eq!(SmemHashTable::<f32>::smem_bytes(256), 2048);
        assert_eq!(SmemHashTable::<f64>::smem_bytes(256), 3072);
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        run_in_block(|block| {
            let table = SmemHashTable::<f32>::new(block, 128);
            let t2 = table.clone();
            block.run_warps(|w| {
                let keys = lanes_from_fn(|l| Some((l * 37) as u32));
                let vals = lanes_from_fn(|l| l as f32);
                t2.insert_warp(w, &keys, &vals);
                let got = t2.lookup_warp(w, &keys);
                for l in 0..WARP_SIZE {
                    assert_eq!(got[l], Some(l as f32));
                }
                // Absent keys return None.
                let missing = lanes_from_fn(|l| Some((l * 37 + 1) as u32));
                let got = t2.lookup_warp(w, &missing);
                assert!(got.iter().all(Option::is_none));
            });
            assert_eq!(table.len(), 32);
            assert!((table.load_factor() - 0.25).abs() < 1e-9);
        });
    }

    #[test]
    fn inactive_lanes_do_not_insert() {
        run_in_block(|block| {
            let table = SmemHashTable::<f32>::new(block, 64);
            let t = table.clone();
            block.run_warps(|w| {
                let keys = lanes_from_fn(|l| if l < 5 { Some(l as u32) } else { None });
                let vals = lanes_from_fn(|l| l as f32);
                t.insert_warp(w, &keys, &vals);
            });
            assert_eq!(table.len(), 5);
        });
    }

    #[test]
    fn high_load_factor_costs_more_probes() {
        // Fill a table to ~94% and compare lookup cost of absent keys
        // against a half-loaded table: the paper's load-factor cliff.
        let dev = Device::volta();
        let mut probes_tight = 0u64;
        let mut probes_loose = 0u64;
        for (cap, slot) in [(64usize, 0), (256usize, 1)] {
            let stats = dev.launch("load", LaunchConfig::new(1, 32, 32 * 1024), |block| {
                let table = SmemHashTable::<f32>::new(block, cap);
                let t = table.clone();
                block.run_warps(|w| {
                    // Insert 60 keys in two warp rounds of 30.
                    for round in 0..2 {
                        let keys = lanes_from_fn(|l| (l < 30).then(|| (round * 100 + l) as u32));
                        let vals = lanes_from_fn(|_| 1.0f32);
                        t.insert_warp(w, &keys, &vals);
                    }
                    // Lookup absent keys.
                    let missing = lanes_from_fn(|l| Some((10_000 + l) as u32));
                    let _ = t.lookup_warp(w, &missing);
                });
            });
            if slot == 0 {
                probes_tight = stats.counters.smem_accesses;
            } else {
                probes_loose = stats.counters.smem_accesses;
            }
        }
        assert!(
            probes_tight > probes_loose,
            "94% load ({probes_tight} accesses) should cost more than 23% load ({probes_loose})"
        );
    }

    #[test]
    fn fuzz_against_std_hashmap() {
        // Random distinct key sets and lookups, behaviour compared to a
        // std::HashMap oracle across many seeds.
        use crate::murmur::murmur3_32;
        for seed in 0..40u32 {
            let dev = Device::volta();
            dev.launch("fuzz", LaunchConfig::new(1, 32, 48 * 1024), |block| {
                let n_keys = 1 + (murmur3_32(seed, 1) % 60) as usize;
                // Distinct keys, per the table's contract (CSR columns
                // within a row are unique).
                let mut keys: Vec<u32> = (0..n_keys as u32)
                    .map(|i| murmur3_32(i, seed) % 500)
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                let mut oracle = std::collections::HashMap::new();
                let table =
                    SmemHashTable::<f32>::new(block, SmemHashTable::<f32>::capacity_for(n_keys));
                let t = table.clone();
                block.run_warps(|w| {
                    for chunk in keys.chunks(WARP_SIZE) {
                        let lk = lanes_from_fn(|l| chunk.get(l).copied());
                        let lv =
                            lanes_from_fn(|l| chunk.get(l).map(|&k| k as f32 * 0.5).unwrap_or(0.0));
                        t.insert_warp(w, &lk, &lv);
                    }
                    for &k in &keys {
                        oracle.insert(k, k as f32 * 0.5);
                    }
                    // Probe both present and absent keys.
                    for probe_base in [0u32, 250, 480] {
                        let pk = lanes_from_fn(|l| Some(probe_base + l as u32));
                        let got = t.lookup_warp(w, &pk);
                        for l in 0..WARP_SIZE {
                            let key = probe_base + l as u32;
                            assert_eq!(got[l], oracle.get(&key).copied(), "seed {seed} key {key}");
                        }
                    }
                });
                assert_eq!(table.len(), oracle.len(), "seed {seed}");
            });
        }
    }

    #[test]
    #[should_panic(expected = "hash table is full")]
    fn overfull_table_panics() {
        run_in_block(|block| {
            let table = SmemHashTable::<f32>::new(block, 32);
            let t = table.clone();
            block.run_warps(|w| {
                for round in 0..2 {
                    let keys = lanes_from_fn(|l| Some((round * 32 + l) as u32));
                    let vals = lanes_from_fn(|_| 0.0f32);
                    t.insert_warp(w, &keys, &vals);
                }
            });
        });
    }
}
