//! Shared-memory data structures used by the kernel strategies.

pub mod bloom;
pub mod hash_table;

pub use bloom::SmemBloomFilter;
pub use hash_table::{SmemHashTable, MAX_LOAD};
