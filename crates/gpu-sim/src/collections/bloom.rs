//! Per-block shared-memory bloom filter (§3.3.2's alternative to the
//! hash table: "we tried building a bloom filter in shared memory and
//! used a binary search to perform lookups of nonzeros in global memory
//! for positive hits").

use crate::device::BlockCtx;
use crate::murmur::murmur3_32;
use crate::shared::SharedArray;
use crate::warp::{lanes_from_fn, Lanes, WarpCtx, WARP_SIZE};

/// A blocked bloom filter over `u32` keys with two Murmur hash functions.
///
/// Negative queries are definitive (the common case when intersecting a
/// sparse row against mostly-missing columns); positive queries may be
/// false positives and must be confirmed against global memory, which is
/// exactly the trade §3.3.2 explores.
#[derive(Debug, Clone)]
pub struct SmemBloomFilter {
    words: SharedArray<u32>,
    bits: usize,
}

impl SmemBloomFilter {
    /// Number of bits needed for `entries` keys at ~8 bits/key (≈2 %
    /// false-positive rate with 2 hashes), rounded up to a warp-friendly
    /// multiple of 32.
    pub fn bits_for(entries: usize) -> usize {
        (entries.max(1) * 8).next_multiple_of(32)
    }

    /// Shared-memory bytes a filter of `bits` occupies.
    pub fn smem_bytes(bits: usize) -> usize {
        bits.div_ceil(32) * 4
    }

    /// Allocates the filter from block shared memory and cost-accounts
    /// the block-collective zero-fill of its words (queries read every
    /// word a key hashes to, so the whole filter must be defined).
    ///
    /// # Panics
    ///
    /// Panics if the shared-memory budget is exceeded.
    pub fn new(block: &mut BlockCtx, bits: usize) -> Self {
        let bits = bits.next_multiple_of(32).max(32);
        let words = block.alloc_shared::<u32>(bits / 32);
        block.fill_shared(&words, 0);
        Self { words, bits }
    }

    /// Bit capacity.
    pub fn bits(&self) -> usize {
        self.bits
    }

    #[inline]
    fn positions(&self, key: u32) -> [usize; 2] {
        [
            murmur3_32(key, 0x0b10_0f11) as usize % self.bits,
            murmur3_32(key, 0x0b10_0f22) as usize % self.bits,
        ]
    }

    /// Warp-parallel insert of each active lane's key: one `atomicOr`
    /// per hash into the word holding the target bit, so concurrent
    /// inserts from other warps merge race-free.
    pub fn insert_warp(&self, w: &mut WarpCtx, keys: &Lanes<Option<u32>>) {
        for h in 0..2 {
            let idx = lanes_from_fn(|l| keys[l].map(|k| self.positions(k)[h] / 32));
            let bits = lanes_from_fn(|l| {
                keys[l]
                    .map(|k| 1u32 << (self.positions(k)[h] % 32))
                    .unwrap_or(0)
            });
            // Hash + bit-select ALU work alongside the atomic itself.
            w.issue(1);
            let _ = w.smem_atomic(&self.words, &idx, &bits, |cur, bit| cur | bit);
        }
    }

    /// Warp-parallel membership query. `false` is definitive; `true` may
    /// be a false positive.
    pub fn query_warp(&self, w: &mut WarpCtx, keys: &Lanes<Option<u32>>) -> Lanes<bool> {
        let mut out = [false; WARP_SIZE];
        let mut hit = [true; WARP_SIZE];
        for h in 0..2 {
            let idx = lanes_from_fn(|l| keys[l].map(|k| self.positions(k)[h] / 32));
            let words = w.smem_gather(&self.words, &idx);
            w.issue(1);
            for l in 0..WARP_SIZE {
                if let Some(k) = keys[l] {
                    if words[l] & (1 << (self.positions(k)[h] % 32)) == 0 {
                        hit[l] = false;
                    }
                } else {
                    hit[l] = false;
                }
            }
        }
        for l in 0..WARP_SIZE {
            out[l] = keys[l].is_some() && hit[l];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, LaunchConfig};

    #[test]
    fn inserted_keys_always_hit() {
        let dev = Device::volta();
        dev.launch("bloom", LaunchConfig::new(1, 32, 8 * 1024), |block| {
            let filter = SmemBloomFilter::new(block, SmemBloomFilter::bits_for(32));
            let f = filter.clone();
            block.run_warps(|w| {
                let keys = lanes_from_fn(|l| Some((l * 13) as u32));
                f.insert_warp(w, &keys);
                let hits = f.query_warp(w, &keys);
                assert!(hits.iter().all(|&h| h), "no false negatives allowed");
            });
        });
    }

    #[test]
    fn absent_keys_mostly_miss() {
        let dev = Device::volta();
        dev.launch("bloom", LaunchConfig::new(1, 32, 8 * 1024), |block| {
            let filter = SmemBloomFilter::new(block, SmemBloomFilter::bits_for(64));
            let f = filter.clone();
            block.run_warps(|w| {
                for round in 0..2u32 {
                    let keys = lanes_from_fn(|l| Some(round * 32 + l as u32));
                    f.insert_warp(w, &keys);
                }
                // Query 128 keys far outside the inserted range. With 64
                // entries in 512 bits and 2 hashes the analytic FP rate
                // is ~5%; allow up to 15% before calling it broken.
                let mut fp = 0usize;
                for round in 0..4u32 {
                    let probe = lanes_from_fn(|l| Some(100_000 + round * 3232 + (l * 101) as u32));
                    let hits = f.query_warp(w, &probe);
                    fp += hits.iter().filter(|&&h| h).count();
                }
                assert!(fp <= 19, "false-positive rate too high: {fp}/128");
            });
        });
    }

    #[test]
    fn inactive_lanes_never_hit() {
        let dev = Device::volta();
        dev.launch("bloom", LaunchConfig::new(1, 32, 1024), |block| {
            let filter = SmemBloomFilter::new(block, 256);
            let f = filter.clone();
            block.run_warps(|w| {
                let keys: Lanes<Option<u32>> = [None; WARP_SIZE];
                let hits = f.query_warp(w, &keys);
                assert!(hits.iter().all(|&h| !h));
            });
        });
    }

    #[test]
    fn sizing_helpers_are_consistent() {
        let bits = SmemBloomFilter::bits_for(100);
        assert!(bits >= 800);
        assert_eq!(bits % 32, 0);
        assert_eq!(SmemBloomFilter::smem_bytes(bits), bits / 8);
    }
}
