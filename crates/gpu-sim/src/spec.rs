//! Device specifications for the simulated GPU architectures.

/// Architecture generation, used where the paper distinguishes Volta and
/// Ampere behaviour (shared-memory capacity, §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Volta (V100) — the architecture the paper's benchmarks ran on.
    Volta,
    /// Ampere (A100) — the larger-shared-memory alternative the paper
    /// sizes its limits against.
    Ampere,
}

/// Static description of a simulated GPU.
///
/// The constants come from the NVIDIA architecture whitepapers the paper
/// cites; they feed both the occupancy model (how many blocks fit an SM)
/// and the roofline cost model (how counters convert to simulated time).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "V100".
    pub name: &'static str,
    /// Architecture generation.
    pub arch: Arch,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Maximum resident warps per SM (64 on Volta and Ampere).
    pub max_warps_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Shared memory available per SM in bytes, assuming the L1 carve-out
    /// the paper uses ("trading off the size of the L1 cache to double
    /// the amount of shared memory", §3.3).
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory a single block may allocate.
    pub shared_mem_per_block: usize,
    /// Warp width (32 on every current NVIDIA architecture).
    pub warp_size: usize,
    /// Instruction issue slots per SM per cycle (warp schedulers).
    pub issue_slots_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Device-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Chip-wide L2 cache capacity in bytes (6 MB on V100, 40 MB on
    /// A100); governs how much of a launch's re-read traffic hits DRAM.
    pub l2_bytes: usize,
    /// Bytes moved per coalesced global-memory transaction (one cache
    /// line / memory segment).
    pub mem_transaction_bytes: usize,
    /// Number of shared-memory banks (accesses by a warp to distinct
    /// addresses in the same bank serialize, §3.1).
    pub smem_banks: usize,
    /// Device (global) memory capacity in bytes — 16 GB HBM2 on V100,
    /// 40 GB HBM2e on A100. The serving layer's prepared-index cache
    /// evicts against a fraction of this budget.
    pub mem_bytes: usize,
}

impl DeviceSpec {
    /// Tesla V100 (Volta), the paper's benchmark GPU: 80 SMs, 96 KiB
    /// shared memory per SM after the L1 carve-out, 900 GB/s HBM2.
    pub fn volta_v100() -> Self {
        Self {
            name: "V100",
            arch: Arch::Volta,
            sm_count: 80,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 96 * 1024,
            shared_mem_per_block: 96 * 1024,
            warp_size: 32,
            issue_slots_per_sm: 4,
            clock_ghz: 1.38,
            mem_bandwidth: 900.0e9,
            l2_bytes: 6 * 1024 * 1024,
            mem_transaction_bytes: 128,
            smem_banks: 32,
            mem_bytes: 16 * 1024 * 1024 * 1024,
        }
    }

    /// A100 (Ampere): 108 SMs, 163 KiB usable shared memory per SM,
    /// 1555 GB/s HBM2e.
    pub fn ampere_a100() -> Self {
        Self {
            name: "A100",
            arch: Arch::Ampere,
            sm_count: 108,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 163 * 1024,
            shared_mem_per_block: 163 * 1024,
            warp_size: 32,
            issue_slots_per_sm: 4,
            clock_ghz: 1.41,
            mem_bandwidth: 1555.0e9,
            l2_bytes: 40 * 1024 * 1024,
            mem_transaction_bytes: 128,
            smem_banks: 32,
            mem_bytes: 40 * 1024 * 1024 * 1024,
        }
    }

    /// Maximum number of f32 elements a dense shared-memory row may hold
    /// per block — §3.3.2's "max dimensionality of 23K with
    /// single-precision" on Volta (40K on Ampere).
    pub fn max_dense_smem_elems(&self) -> usize {
        self.shared_mem_per_block / 4
    }

    /// Occupancy for a launch: how many blocks and warps are concurrently
    /// resident per SM given the block geometry and shared-memory usage.
    pub fn occupancy(&self, threads_per_block: usize, smem_per_block: usize) -> Occupancy {
        let warps_per_block = threads_per_block.div_ceil(self.warp_size).max(1);
        let by_warps = self.max_warps_per_sm / warps_per_block;
        let by_smem = self
            .shared_mem_per_sm
            .checked_div(smem_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        let blocks_per_sm = by_warps.min(by_smem).min(self.max_blocks_per_sm);
        let concurrent_warps = blocks_per_sm * warps_per_block;
        Occupancy {
            blocks_per_sm,
            warps_per_block,
            concurrent_warps_per_sm: concurrent_warps.min(self.max_warps_per_sm),
            fraction: concurrent_warps.min(self.max_warps_per_sm) as f64
                / self.max_warps_per_sm as f64,
        }
    }
}

/// Result of the occupancy calculation for one launch configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks concurrently resident on one SM.
    pub blocks_per_sm: usize,
    /// Warps per block.
    pub warps_per_block: usize,
    /// Warps concurrently resident on one SM.
    pub concurrent_warps_per_sm: usize,
    /// `concurrent_warps_per_sm / max_warps_per_sm`.
    pub fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_full_occupancy_with_32_warp_blocks_and_half_smem() {
        // §3.3: "a block size of 32 warps allows two blocks, the full 64
        // warps, to be scheduled concurrently on each SM" when each block
        // uses ≤ 48 KiB.
        let spec = DeviceSpec::volta_v100();
        let occ = spec.occupancy(1024, 48 * 1024);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.concurrent_warps_per_sm, 64);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_smem_halves_occupancy() {
        // §3.3.2: "anything over 48KB of shared memory per block is going
        // to decrease occupancy."
        let spec = DeviceSpec::volta_v100();
        let occ = spec.occupancy(1024, 96 * 1024);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.concurrent_warps_per_sm, 32);
        assert!(occ.fraction < 1.0);
    }

    #[test]
    fn dense_smem_dimensionality_limits_match_paper() {
        // "The 96KiB limit per block on Volta allows a max dimensionality
        // of [~24K] with single-precision and the 163KiB limit ... [~40K]".
        assert_eq!(DeviceSpec::volta_v100().max_dense_smem_elems(), 24 * 1024);
        let a100 = DeviceSpec::ampere_a100().max_dense_smem_elems();
        assert!(a100 > 40_000 && a100 < 42_000);
    }

    #[test]
    fn small_blocks_are_warp_limited() {
        let spec = DeviceSpec::volta_v100();
        let occ = spec.occupancy(32, 0);
        // 1 warp per block, capped by max_blocks_per_sm = 32.
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.concurrent_warps_per_sm, 32);
    }

    #[test]
    fn ampere_has_more_sms_and_bandwidth() {
        let v = DeviceSpec::volta_v100();
        let a = DeviceSpec::ampere_a100();
        assert!(a.sm_count > v.sm_count);
        assert!(a.mem_bandwidth > v.mem_bandwidth);
        assert_eq!(a.warp_size, 32);
    }
}
