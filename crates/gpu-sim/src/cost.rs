//! First-order roofline cost model converting counters into simulated
//! time.
//!
//! The model is deliberately simple and documented (DESIGN.md §7): a
//! launch's simulated time is the *maximum* of a compute term (effective
//! warp-instruction issues through the machine-wide issue bandwidth,
//! derated by occupancy when too few warps are resident to hide latency)
//! and a memory term (bytes moved at device bandwidth). Absolute seconds
//! are not the point — the paper's testbed numbers are unreachable
//! without silicon — but the first-order terms (divergence, coalescing,
//! occupancy) are exactly the quantities §3 argues about, so *relative*
//! comparisons carry over.

use crate::counters::Counters;
use crate::spec::{DeviceSpec, Occupancy};

/// Occupancy below which issue throughput is assumed proportional to the
/// number of resident warps (not enough parallelism to hide latency).
/// At or above this fraction the machine is treated as fully hidden —
/// the "increased parallelism" §3.1 calls out.
const LATENCY_HIDING_KNEE: f64 = 0.5;

/// Cost estimate of one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Seconds attributable to instruction issue (incl. serialization).
    pub compute_seconds: f64,
    /// Seconds attributable to device-memory traffic.
    pub memory_seconds: f64,
    /// `max(compute, memory)` — the roofline estimate.
    pub total_seconds: f64,
    /// Whether the launch is memory-bound under the model.
    pub memory_bound: bool,
}

/// Estimates the simulated execution time of a launch, without per-block
/// load information (assumes balanced blocks).
pub fn estimate(
    spec: &DeviceSpec,
    blocks: usize,
    occupancy: &Occupancy,
    counters: &Counters,
) -> CostBreakdown {
    estimate_with_blocks(spec, blocks, occupancy, counters, 0)
}

/// Estimates the simulated execution time of a launch.
///
/// `max_block_issues` is the effective issue count of the heaviest block
/// (0 = unknown). The compute term is the classic makespan lower bound
/// `max(total work / machine slots, heaviest single job)`: a grid whose
/// blocks are wildly imbalanced — a partitioned high-degree row next to
/// thousands of near-empty rows — is bounded by its straggler, the
/// load-balancing concern §3.3 is designed around.
pub fn estimate_with_blocks(
    spec: &DeviceSpec,
    blocks: usize,
    occupancy: &Occupancy,
    counters: &Counters,
    max_block_issues: u64,
) -> CostBreakdown {
    // How many SMs actually have work (tail effect for tiny grids).
    let active_sms = if occupancy.blocks_per_sm == 0 {
        1
    } else {
        spec.sm_count
            .min(blocks.div_ceil(occupancy.blocks_per_sm).max(1))
    }
    .min(spec.sm_count)
    .max(1);

    // Latency hiding: throughput ramps linearly up to the knee.
    let hiding = (occupancy.fraction / LATENCY_HIDING_KNEE).clamp(1.0 / 64.0, 1.0);

    let issue_rate =
        active_sms as f64 * spec.issue_slots_per_sm as f64 * hiding * spec.clock_ghz * 1e9;
    // Makespan bound: the machine-wide rate divided across concurrent
    // blocks gives the per-block service rate a straggler is limited to.
    let per_block_rate =
        issue_rate / (active_sms as f64 * occupancy.blocks_per_sm.max(1) as f64).max(1.0);
    let balanced = counters.effective_issues() as f64 / issue_rate;
    let straggler = max_block_issues as f64 / per_block_rate.max(1.0);
    let compute_seconds = balanced.max(straggler);

    // Bandwidth scales with the fraction of the chip in use for small
    // grids (a single active SM cannot saturate HBM).
    let bw = spec.mem_bandwidth * (active_sms as f64 / spec.sm_count as f64).max(0.05);
    // L2 model: the first touch of every distinct segment is a compulsory
    // DRAM transaction; re-read traffic hits DRAM in proportion to how
    // badly the launch's working set overflows the L2 (fully cached when
    // it fits, fully spilled when it is many times the capacity).
    let unique = counters.global_bytes_unique.min(counters.global_bytes) as f64;
    let reread = counters.global_bytes as f64 - unique;
    let miss = (unique / spec.l2_bytes as f64).clamp(0.02, 1.0);
    let dram_bytes = unique + reread * miss;
    let memory_seconds = dram_bytes / bw;

    let total_seconds = compute_seconds.max(memory_seconds);
    CostBreakdown {
        compute_seconds,
        memory_seconds,
        total_seconds,
        memory_bound: memory_seconds > compute_seconds,
    }
}

/// Inverts the compute roofline for watchdog budgeting: how many
/// effective warp-instruction issues one block can retire in `seconds`
/// of simulated time under this launch geometry. This is the straggler
/// bound of [`estimate_with_blocks`] solved for `max_block_issues`, so a
/// launch whose heaviest block stays within the budget would have a
/// compute term of at most `seconds`.
pub fn per_block_issue_budget(
    spec: &DeviceSpec,
    blocks: usize,
    occupancy: &Occupancy,
    seconds: f64,
) -> u64 {
    let active_sms = if occupancy.blocks_per_sm == 0 {
        1
    } else {
        spec.sm_count
            .min(blocks.div_ceil(occupancy.blocks_per_sm).max(1))
    }
    .min(spec.sm_count)
    .max(1);
    let hiding = (occupancy.fraction / LATENCY_HIDING_KNEE).clamp(1.0 / 64.0, 1.0);
    let issue_rate =
        active_sms as f64 * spec.issue_slots_per_sm as f64 * hiding * spec.clock_ghz * 1e9;
    let per_block_rate =
        issue_rate / (active_sms as f64 * occupancy.blocks_per_sm.max(1) as f64).max(1.0);
    (seconds.max(0.0) * per_block_rate).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::volta_v100()
    }

    #[test]
    fn compute_bound_launch() {
        let s = spec();
        let occ = s.occupancy(1024, 0);
        let c = Counters {
            issues: 1_000_000_000,
            ..Counters::default()
        };
        let est = estimate(&s, 10_000, &occ, &c);
        assert!(!est.memory_bound);
        assert!(est.total_seconds > 0.0);
        assert_eq!(est.total_seconds, est.compute_seconds);
    }

    #[test]
    fn memory_bound_launch() {
        let s = spec();
        let occ = s.occupancy(1024, 0);
        let c = Counters {
            issues: 10,
            global_bytes: 100_000_000_000,
            // All bytes distinct: no L2 reuse to discount.
            global_bytes_unique: 100_000_000_000,
            ..Counters::default()
        };
        let est = estimate(&s, 10_000, &occ, &c);
        assert!(est.memory_bound);
        // 100 GB at 900 GB/s ≈ 0.111 s.
        assert!((est.memory_seconds - 100.0 / 900.0).abs() < 0.01);
    }

    #[test]
    fn l2_reuse_is_discounted_when_working_set_fits() {
        let s = spec();
        let occ = s.occupancy(1024, 0);
        // 1 MB working set read 100 times: with a 6 MB L2 almost all
        // re-reads hit cache.
        let c = Counters {
            global_bytes: 100_000_000,
            global_bytes_unique: 1_000_000,
            ..Counters::default()
        };
        let cached = estimate(&s, 10_000, &occ, &c).memory_seconds;
        // Same traffic with a working set far beyond L2 spills to DRAM.
        let big = Counters {
            global_bytes: 100_000_000,
            global_bytes_unique: 100_000_000,
            ..Counters::default()
        };
        let spilled = estimate(&s, 10_000, &occ, &big).memory_seconds;
        assert!(spilled > 5.0 * cached, "{spilled} vs {cached}");
    }

    #[test]
    fn divergence_increases_time() {
        let s = spec();
        let occ = s.occupancy(1024, 0);
        let clean = Counters {
            issues: 1_000_000,
            ..Counters::default()
        };
        let divergent = Counters {
            issues: 1_000_000,
            divergence_extra: 5_000_000,
            ..Counters::default()
        };
        let t0 = estimate(&s, 1000, &occ, &clean).total_seconds;
        let t1 = estimate(&s, 1000, &occ, &divergent).total_seconds;
        assert!(t1 > 5.0 * t0);
    }

    #[test]
    fn low_occupancy_slows_compute() {
        let s = spec();
        let full = s.occupancy(1024, 48 * 1024); // 64 warps/SM
        let half = s.occupancy(1024, 96 * 1024); // 32 warps/SM
        let c = Counters {
            issues: 1_000_000_000,
            ..Counters::default()
        };
        let t_full = estimate(&s, 10_000, &full, &c).total_seconds;
        let t_half = estimate(&s, 10_000, &half, &c).total_seconds;
        assert!(t_full <= t_half);
    }

    #[test]
    fn straggler_block_bounds_the_makespan() {
        let s = spec();
        let occ = s.occupancy(1024, 0);
        let c = Counters {
            issues: 1_000_000,
            ..Counters::default()
        };
        let balanced = estimate_with_blocks(&s, 1000, &occ, &c, 1_000).total_seconds;
        // Same total work, but one block holds 90% of it.
        let skewed = estimate_with_blocks(&s, 1000, &occ, &c, 900_000).total_seconds;
        assert!(skewed > 10.0 * balanced, "{skewed} vs {balanced}");
    }

    #[test]
    fn cost_is_monotone_in_every_counter() {
        let s = spec();
        let occ = s.occupancy(256, 0);
        let base = Counters {
            issues: 1_000_000,
            divergence_extra: 1_000,
            global_bytes: 10_000_000,
            global_bytes_unique: 5_000_000,
            bank_conflict_extra: 100,
            atomic_conflict_extra: 100,
            ..Counters::default()
        };
        let t0 = estimate(&s, 500, &occ, &base).total_seconds;
        for bump in 0..4 {
            let mut c = base;
            match bump {
                0 => c.issues *= 4,
                1 => c.divergence_extra += 10_000_000,
                2 => {
                    c.global_bytes *= 4;
                    c.global_bytes_unique *= 4;
                }
                _ => c.bank_conflict_extra += 10_000_000,
            }
            let t1 = estimate(&s, 500, &occ, &c).total_seconds;
            assert!(t1 >= t0, "bump {bump}: {t1} < {t0}");
        }
    }

    #[test]
    fn tiny_grids_pay_the_tail() {
        let s = spec();
        let occ = s.occupancy(1024, 0);
        let c = Counters {
            issues: 1_000_000,
            ..Counters::default()
        };
        let t_one_block = estimate(&s, 1, &occ, &c).total_seconds;
        let t_many = estimate(&s, 10_000, &occ, &c).total_seconds;
        assert!(t_one_block > t_many);
    }
}
