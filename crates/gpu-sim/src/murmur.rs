//! Murmur-style integer hashing (§3.3.2: "a simple hash table with a
//! Murmur hash function and linear probing").

/// MurmurHash3's 32-bit finalizer (`fmix32`), seeded. A full-avalanche
/// integer mixer: every input bit affects every output bit, which is what
/// the per-block hash table needs from column indices that arrive with
/// strong locality.
#[inline]
pub fn murmur3_32(key: u32, seed: u32) -> u32 {
    let mut h = key.wrapping_add(seed.wrapping_mul(0x9e37_79b9));
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(murmur3_32(42, 0), murmur3_32(42, 0));
        assert_ne!(murmur3_32(42, 0), murmur3_32(42, 1));
    }

    #[test]
    fn sequential_keys_spread() {
        // Consecutive column ids (the common CSR case) must not cluster:
        // check that 256 sequential keys hit > 180 distinct low bytes.
        let mut seen = std::collections::HashSet::new();
        for k in 0..256u32 {
            seen.insert(murmur3_32(k, 7) & 0xff);
        }
        // A perfectly random map of 256 keys into 256 buckets leaves
        // ~162 distinct values (coupon-collector expectation); demand at
        // least 145 to catch gross clustering without flaking.
        assert!(seen.len() > 145, "poor dispersion: {}", seen.len());
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let a = murmur3_32(0x1234, 3);
        let b = murmur3_32(0x1235, 3);
        let differing = (a ^ b).count_ones();
        assert!(differing >= 8, "only {differing} bits changed");
    }
}
