//! Simulated device (global) memory buffers.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(0);

/// A buffer in simulated device memory.
///
/// All *kernel-side* access goes through [`crate::WarpCtx`] gather /
/// scatter / atomic operations so that every touch is charged to the
/// coalescing model; the `host_*` methods model `cudaMemcpy`-style
/// host-device transfers and are free of kernel-side accounting.
///
/// Interior mutability (a `RefCell`) stands in for the device's freedom
/// to write buffers from any thread; the simulator executes blocks
/// sequentially, so no synchronization is needed.
#[derive(Debug)]
pub struct GlobalBuffer<T> {
    id: u64,
    data: RefCell<Vec<T>>,
    /// Initcheck bitmap: `Some` for buffers created with
    /// [`GlobalBuffer::uninit`] (like `cudaMalloc` without a memset);
    /// `None` for buffers whose construction defines every element.
    init: Option<RefCell<Vec<bool>>>,
    /// Optional human-readable label; fault injection targets buffers by
    /// label (see [`crate::fault::FaultPlan::with_bit_flips`]).
    label: RefCell<Option<String>>,
}

impl<T: Copy + Default> GlobalBuffer<T> {
    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        Self::from_vec(vec![T::default(); len])
    }

    /// Takes ownership of host data (the simulated H2D copy).
    pub fn from_vec(data: Vec<T>) -> Self {
        Self {
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            data: RefCell::new(data),
            init: None,
            label: RefCell::new(None),
        }
    }

    /// Allocates a buffer whose contents are *undefined* until written —
    /// the `cudaMalloc`-without-memset case the initcheck sanitizer
    /// exists for. Reads of never-written elements under an enabled
    /// sanitizer produce initcheck reports; the storage itself is
    /// zero-filled so execution stays deterministic.
    pub fn uninit(len: usize) -> Self {
        Self {
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            data: RefCell::new(vec![T::default(); len]),
            init: Some(RefCell::new(vec![false; len])),
            label: RefCell::new(None),
        }
    }

    /// Process-unique allocation id (keys the launch-level L2 model).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Names the buffer for diagnostics and fault targeting
    /// ([`crate::fault::FaultPlan::with_bit_flips`] selects buffers by
    /// label).
    pub fn set_label(&self, label: &str) {
        *self.label.borrow_mut() = Some(label.to_string());
    }

    /// Builder-style [`GlobalBuffer::set_label`].
    pub fn with_label(self, label: &str) -> Self {
        self.set_label(label);
        self
    }

    /// The buffer's label, if one was set.
    pub fn label(&self) -> Option<String> {
        self.label.borrow().clone()
    }

    /// Runs `f` on the label without cloning (the fault injector's
    /// match path).
    pub(crate) fn with_label_ref<R>(&self, f: impl FnOnce(Option<&str>) -> R) -> R {
        f(self.label.borrow().as_deref())
    }

    /// Copies host data from a slice.
    pub fn from_slice(data: &[T]) -> Self {
        Self::from_vec(data.to_vec())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device-memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }

    /// Copies the buffer back to the host (the simulated D2H copy).
    pub fn to_vec(&self) -> Vec<T> {
        self.data.borrow().clone()
    }

    /// Host-side read of one element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn host_get(&self, idx: usize) -> T {
        self.data.borrow()[idx]
    }

    /// Host-side write of one element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn host_set(&self, idx: usize, v: T) {
        self.mark_init(idx);
        self.data.borrow_mut()[idx] = v;
    }

    /// Whether element `idx` has ever been written (always true for
    /// buffers constructed from data).
    pub(crate) fn is_init(&self, idx: usize) -> bool {
        match &self.init {
            None => true,
            Some(bits) => bits.borrow().get(idx).copied().unwrap_or(true),
        }
    }

    fn mark_init(&self, idx: usize) {
        if let Some(bits) = &self.init {
            if let Some(b) = bits.borrow_mut().get_mut(idx) {
                *b = true;
            }
        }
    }

    pub(crate) fn read(&self, idx: usize) -> T {
        self.data.borrow()[idx]
    }

    pub(crate) fn write(&self, idx: usize, v: T) {
        self.mark_init(idx);
        self.data.borrow_mut()[idx] = v;
    }

    pub(crate) fn rmw(&self, idx: usize, f: impl FnOnce(T) -> T) {
        self.mark_init(idx);
        let mut d = self.data.borrow_mut();
        d[idx] = f(d[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_host_access() {
        let b = GlobalBuffer::<f32>::zeroed(4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.bytes(), 16);
        b.host_set(2, 7.0);
        assert_eq!(b.host_get(2), 7.0);
        assert_eq!(b.to_vec(), vec![0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn from_slice_round_trips() {
        let b = GlobalBuffer::from_slice(&[1u32, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(!b.is_empty());
    }

    #[test]
    fn rmw_applies_function() {
        let b = GlobalBuffer::from_slice(&[10i64]);
        b.rmw(0, |v| v + 5);
        assert_eq!(b.host_get(0), 15);
    }

    #[test]
    fn uninit_tracks_writes_per_element() {
        let b = GlobalBuffer::<f32>::uninit(3);
        assert!(!b.is_init(0));
        b.write(1, 2.0);
        assert!(b.is_init(1));
        assert!(!b.is_init(2));
        b.rmw(2, |v| v + 1.0);
        assert!(b.is_init(2));
        // Constructed-from-data buffers are fully initialized.
        let c = GlobalBuffer::from_slice(&[1u32]);
        assert!(c.is_init(0));
    }
}
