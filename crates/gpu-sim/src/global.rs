//! Simulated device (global) memory buffers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(0);

/// The lockable payload of a buffer: element storage plus the optional
/// initcheck bitmap. Kept in one lock so a write marks its element
/// initialized atomically with the store.
#[derive(Debug)]
pub(crate) struct Storage<T> {
    data: Vec<T>,
    /// Initcheck bitmap: `Some` for buffers created with
    /// [`GlobalBuffer::uninit`] (like `cudaMalloc` without a memset);
    /// `None` for buffers whose construction defines every element.
    init: Option<Vec<bool>>,
}

impl<T: Copy> Storage<T> {
    fn mark_init(&mut self, idx: usize) {
        if let Some(bits) = &mut self.init {
            if let Some(b) = bits.get_mut(idx) {
                *b = true;
            }
        }
    }

    pub(crate) fn get(&self, idx: usize) -> T {
        self.data[idx]
    }

    pub(crate) fn set(&mut self, idx: usize, v: T) {
        self.mark_init(idx);
        self.data[idx] = v;
    }

    pub(crate) fn rmw(&mut self, idx: usize, f: impl FnOnce(T) -> T) {
        self.mark_init(idx);
        self.data[idx] = f(self.data[idx]);
    }
}

/// A cloneable handle on a buffer's storage, used by the parallel
/// executor to replay deferred atomics after all blocks finish (the
/// handle is `'static`, so the replay closures outlive the launch's
/// borrow of the buffer).
pub(crate) type SharedStorage<T> = Arc<RwLock<Storage<T>>>;

/// A buffer in simulated device memory.
///
/// All *kernel-side* access goes through [`crate::WarpCtx`] gather /
/// scatter / atomic operations so that every touch is charged to the
/// coalescing model; the `host_*` methods model `cudaMemcpy`-style
/// host-device transfers and are free of kernel-side accounting.
///
/// Interior mutability (an `RwLock`) stands in for the device's freedom
/// to write buffers from any thread. Blocks of one launch may execute on
/// concurrent host threads (see `GPU_SIM_HOST_THREADS`), but they write
/// disjoint elements — cross-block combining goes through deferred
/// atomics — so the lock only orders raw memory access, never results.
#[derive(Debug)]
pub struct GlobalBuffer<T> {
    id: u64,
    storage: SharedStorage<T>,
    /// Optional human-readable label; fault injection targets buffers by
    /// label (see [`crate::fault::FaultPlan::with_bit_flips`]).
    label: RwLock<Option<String>>,
}

/// Ignores lock poisoning: a panicking block (watchdog abort, injected
/// fault) never holds a guard across user code, so the payload is
/// always consistent.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl<T: Copy + Default> GlobalBuffer<T> {
    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        Self::from_vec(vec![T::default(); len])
    }

    /// Takes ownership of host data (the simulated H2D copy).
    pub fn from_vec(data: Vec<T>) -> Self {
        Self {
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            storage: Arc::new(RwLock::new(Storage { data, init: None })),
            label: RwLock::new(None),
        }
    }

    /// Allocates a buffer whose contents are *undefined* until written —
    /// the `cudaMalloc`-without-memset case the initcheck sanitizer
    /// exists for. Reads of never-written elements under an enabled
    /// sanitizer produce initcheck reports; the storage itself is
    /// zero-filled so execution stays deterministic.
    pub fn uninit(len: usize) -> Self {
        Self {
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            storage: Arc::new(RwLock::new(Storage {
                data: vec![T::default(); len],
                init: Some(vec![false; len]),
            })),
            label: RwLock::new(None),
        }
    }

    /// Process-unique allocation id (keys the per-block L2 model).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Names the buffer for diagnostics and fault targeting
    /// ([`crate::fault::FaultPlan::with_bit_flips`] selects buffers by
    /// label).
    pub fn set_label(&self, label: &str) {
        *write_lock(&self.label) = Some(label.to_string());
    }

    /// Builder-style [`GlobalBuffer::set_label`].
    pub fn with_label(self, label: &str) -> Self {
        self.set_label(label);
        self
    }

    /// The buffer's label, if one was set.
    pub fn label(&self) -> Option<String> {
        read_lock(&self.label).clone()
    }

    /// Runs `f` on the label without cloning (the fault injector's
    /// match path).
    pub(crate) fn with_label_ref<R>(&self, f: impl FnOnce(Option<&str>) -> R) -> R {
        f(read_lock(&self.label).as_deref())
    }

    /// Copies host data from a slice.
    pub fn from_slice(data: &[T]) -> Self {
        Self::from_vec(data.to_vec())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        read_lock(&self.storage).data.len()
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device-memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }

    /// Copies the buffer back to the host (the simulated D2H copy).
    pub fn to_vec(&self) -> Vec<T> {
        read_lock(&self.storage).data.clone()
    }

    /// Host-side read of one element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn host_get(&self, idx: usize) -> T {
        read_lock(&self.storage).get(idx)
    }

    /// Host-side write of one element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn host_set(&self, idx: usize, v: T) {
        write_lock(&self.storage).set(idx, v);
    }

    /// Whether element `idx` has ever been written (always true for
    /// buffers constructed from data).
    pub(crate) fn is_init(&self, idx: usize) -> bool {
        match &read_lock(&self.storage).init {
            None => true,
            Some(bits) => bits.get(idx).copied().unwrap_or(true),
        }
    }

    pub(crate) fn read(&self, idx: usize) -> T {
        read_lock(&self.storage).get(idx)
    }

    pub(crate) fn write(&self, idx: usize, v: T) {
        write_lock(&self.storage).set(idx, v);
    }

    pub(crate) fn rmw(&self, idx: usize, f: impl FnOnce(T) -> T) {
        write_lock(&self.storage).rmw(idx, f);
    }

    /// Clones the storage handle for deferred atomic replay (parallel
    /// launches log atomics per block and apply them in block order once
    /// every block has finished).
    pub(crate) fn shared_storage(&self) -> SharedStorage<T> {
        Arc::clone(&self.storage)
    }
}

/// Applies one deferred read-modify-write through a storage handle,
/// outside any buffer borrow. Used by the parallel executor's replay
/// phase.
pub(crate) fn replay_rmw<T: Copy>(storage: &SharedStorage<T>, idx: usize, f: impl FnOnce(T) -> T) {
    storage
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .rmw(idx, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_host_access() {
        let b = GlobalBuffer::<f32>::zeroed(4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.bytes(), 16);
        b.host_set(2, 7.0);
        assert_eq!(b.host_get(2), 7.0);
        assert_eq!(b.to_vec(), vec![0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn from_slice_round_trips() {
        let b = GlobalBuffer::from_slice(&[1u32, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(!b.is_empty());
    }

    #[test]
    fn rmw_applies_function() {
        let b = GlobalBuffer::from_slice(&[10i64]);
        b.rmw(0, |v| v + 5);
        assert_eq!(b.host_get(0), 15);
    }

    #[test]
    fn uninit_tracks_writes_per_element() {
        let b = GlobalBuffer::<f32>::uninit(3);
        assert!(!b.is_init(0));
        b.write(1, 2.0);
        assert!(b.is_init(1));
        assert!(!b.is_init(2));
        b.rmw(2, |v| v + 1.0);
        assert!(b.is_init(2));
        // Constructed-from-data buffers are fully initialized.
        let c = GlobalBuffer::from_slice(&[1u32]);
        assert!(c.is_init(0));
    }

    #[test]
    fn replay_through_shared_storage_matches_direct_rmw() {
        let b = GlobalBuffer::from_slice(&[1.0f64, 2.0]);
        let handle = b.shared_storage();
        replay_rmw(&handle, 1, |v| v * 10.0);
        assert_eq!(b.host_get(1), 20.0);
    }
}
