//! Simulated per-block shared memory.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// The shared-memory pool of one thread block.
///
/// Allocation is bump-style (mirroring static `__shared__` declarations);
/// exceeding the block's budget panics, the simulator's analog of a CUDA
/// launch failure — kernels are expected to check capacity *before*
/// launching, exactly the sizing discipline §3.3.2 discusses.
#[derive(Debug)]
pub struct SharedMem {
    capacity: usize,
    used: Cell<usize>,
}

impl SharedMem {
    /// Creates a pool with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: Cell::new(0),
        }
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// Total budget in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates a zero-initialized array of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics when the allocation would exceed the block's shared-memory
    /// budget — the simulated equivalent of
    /// `CUDA error: invalid configuration argument`.
    pub fn alloc<T: Copy + Default>(&self, len: usize) -> SharedArray<T> {
        let bytes = len * std::mem::size_of::<T>();
        let base = self.used.get();
        assert!(
            base + bytes <= self.capacity,
            "shared memory over budget: {} + {} > {} bytes",
            base,
            bytes,
            self.capacity
        );
        self.used.set(base + bytes);
        SharedArray {
            data: Rc::new(RefCell::new(vec![T::default(); len])),
            base_byte: base,
            elem_bytes: std::mem::size_of::<T>(),
        }
    }
}

/// A typed array living in a block's shared memory.
///
/// Cloning is cheap and aliases the same storage, like two pointers into
/// the same `__shared__` declaration.
#[derive(Debug, Clone)]
pub struct SharedArray<T> {
    data: Rc<RefCell<Vec<T>>>,
    base_byte: usize,
    elem_bytes: usize,
}

impl<T: Copy> SharedArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared-memory bank an element index maps to (4-byte banks).
    pub fn bank_of(&self, idx: usize, banks: usize) -> usize {
        ((self.base_byte + idx * self.elem_bytes) / 4) % banks
    }

    /// Fills the array with a value (host-style initialization used in
    /// tests; kernels should use [`crate::WarpCtx::smem_scatter`]).
    pub fn fill(&self, v: T) {
        self.data.borrow_mut().fill(v);
    }

    /// Copies the contents out (for assertions).
    pub fn snapshot(&self) -> Vec<T> {
        self.data.borrow().clone()
    }

    /// Raw single-element read, **without** cost accounting.
    ///
    /// For serialized per-lane emulation (e.g. the insertion loop of a
    /// selection kernel): the caller is responsible for charging the
    /// equivalent hardware cost through [`crate::WarpCtx`] (`issue`,
    /// `smem_gather`, …).
    pub fn read(&self, idx: usize) -> T {
        self.data.borrow()[idx]
    }

    /// Raw single-element write, **without** cost accounting (see
    /// [`SharedArray::read`]).
    pub fn write(&self, idx: usize, v: T) {
        self.data.borrow_mut()[idx] = v;
    }

    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        f(&mut self.data.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_tracks_usage() {
        let pool = SharedMem::new(1024);
        let a = pool.alloc::<f32>(64);
        assert_eq!(pool.used(), 256);
        let b = pool.alloc::<u32>(32);
        assert_eq!(pool.used(), 384);
        assert_eq!(a.len(), 64);
        assert_eq!(b.len(), 32);
    }

    #[test]
    #[should_panic(expected = "shared memory over budget")]
    fn over_budget_allocation_panics() {
        let pool = SharedMem::new(128);
        let _ = pool.alloc::<f64>(17);
    }

    #[test]
    fn arrays_alias_on_clone() {
        let pool = SharedMem::new(64);
        let a = pool.alloc::<u32>(4);
        let b = a.clone();
        a.write(1, 42);
        assert_eq!(b.read(1), 42);
    }

    #[test]
    fn bank_mapping_wraps_mod_banks() {
        let pool = SharedMem::new(4096);
        let a = pool.alloc::<f32>(128);
        assert_eq!(a.bank_of(0, 32), 0);
        assert_eq!(a.bank_of(31, 32), 31);
        assert_eq!(a.bank_of(32, 32), 0);
        // f64 elements straddle two banks; the model charges the first.
        let pool2 = SharedMem::new(4096);
        let d = pool2.alloc::<f64>(64);
        assert_eq!(d.bank_of(1, 32), 2);
    }

    #[test]
    fn base_offset_shifts_banks() {
        let pool = SharedMem::new(4096);
        let _pad = pool.alloc::<f32>(1);
        let a = pool.alloc::<f32>(8);
        assert_eq!(a.bank_of(0, 32), 1);
    }
}
