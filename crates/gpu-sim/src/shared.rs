//! Simulated per-block shared memory.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::sanitizer::{BlockSanitizer, SimError, SmemShadow};

/// The shared-memory pool of one thread block.
///
/// Allocation is bump-style (mirroring static `__shared__` declarations);
/// exceeding the block's budget fails the launch, the simulator's analog
/// of a CUDA launch failure — kernels are expected to check capacity
/// *before* launching, exactly the sizing discipline §3.3.2 discusses.
/// Standalone pools ([`SharedMem::new`]) panic on over-budget; pools
/// inside a launch record a [`SimError::SmemOverBudget`] that
/// [`crate::Device::try_launch`] surfaces as an `Err`.
#[derive(Debug)]
pub struct SharedMem {
    capacity: usize,
    used: Cell<usize>,
    san: Option<Rc<BlockSanitizer>>,
    fault: RefCell<Option<SimError>>,
}

impl SharedMem {
    /// Creates a pool with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: Cell::new(0),
            san: None,
            fault: RefCell::new(None),
        }
    }

    /// Creates a pool whose allocations carry sanitizer shadow state.
    pub(crate) fn with_sanitizer(capacity: usize, san: Rc<BlockSanitizer>) -> Self {
        Self {
            capacity,
            used: Cell::new(0),
            san: Some(san),
            fault: RefCell::new(None),
        }
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// Total budget in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The first over-budget allocation recorded by
    /// [`SharedMem::alloc_lenient`], if any.
    pub(crate) fn take_fault(&self) -> Option<SimError> {
        self.fault.borrow_mut().take()
    }

    fn try_alloc<T: Copy + Default>(&self, len: usize) -> Result<SharedArray<T>, SimError> {
        let bytes = len * std::mem::size_of::<T>();
        let base = self.used.get();
        if base + bytes > self.capacity {
            return Err(SimError::SmemOverBudget {
                requested: bytes,
                in_use: base,
                capacity: self.capacity,
            });
        }
        self.used.set(base + bytes);
        Ok(self.build_array(len, base))
    }

    fn build_array<T: Copy + Default>(&self, len: usize, base: usize) -> SharedArray<T> {
        let shadow = self
            .san
            .as_ref()
            .filter(|san| san.enabled())
            .map(|san| Rc::new(SmemShadow::new(san.clone(), base, len)));
        SharedArray {
            data: Rc::new(RefCell::new(vec![T::default(); len])),
            base_byte: base,
            elem_bytes: std::mem::size_of::<T>(),
            shadow,
        }
    }

    /// Allocates a zero-initialized array of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics when the allocation would exceed the block's shared-memory
    /// budget — the simulated equivalent of
    /// `CUDA error: invalid configuration argument`.
    pub fn alloc<T: Copy + Default>(&self, len: usize) -> SharedArray<T> {
        self.try_alloc(len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Launch-internal allocation: an over-budget request records the
    /// fault (for [`crate::Device::try_launch`] to surface after the
    /// block finishes) and hands back a working array so the kernel can
    /// limp to the end of the block instead of unwinding.
    pub(crate) fn alloc_lenient<T: Copy + Default>(&self, len: usize) -> SharedArray<T> {
        match self.try_alloc(len) {
            Ok(arr) => arr,
            Err(e) => {
                let mut fault = self.fault.borrow_mut();
                if fault.is_none() {
                    *fault = Some(e);
                }
                self.build_array(len, self.used.get())
            }
        }
    }
}

/// A typed array living in a block's shared memory.
///
/// Cloning is cheap and aliases the same storage, like two pointers into
/// the same `__shared__` declaration.
#[derive(Debug, Clone)]
pub struct SharedArray<T> {
    data: Rc<RefCell<Vec<T>>>,
    base_byte: usize,
    elem_bytes: usize,
    shadow: Option<Rc<SmemShadow>>,
}

impl<T: Copy> SharedArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first shared-memory bank an element index maps to (4-byte
    /// banks). Elements wider than a bank span several; see
    /// [`SharedArray::banks_of`].
    pub fn bank_of(&self, idx: usize, banks: usize) -> usize {
        ((self.base_byte + idx * self.elem_bytes) / 4) % banks
    }

    /// Every bank an element access touches. A 4-byte element occupies
    /// one bank; an 8-byte element (`f64`, `u64`) straddles two
    /// consecutive banks, so a warp-wide access pays for both words —
    /// the doubled shared-memory traffic real hardware shows for
    /// double-precision tiles.
    pub fn banks_of(&self, idx: usize, banks: usize) -> Vec<usize> {
        let first_word = (self.base_byte + idx * self.elem_bytes) / 4;
        let words = self.elem_bytes.div_ceil(4).max(1);
        (0..words).map(|w| (first_word + w) % banks).collect()
    }

    /// The 4-byte word addresses an element occupies, as
    /// `(first_word, word_count)` — the unit of bank-conflict accounting.
    pub(crate) fn word_span(&self, idx: usize) -> (usize, usize) {
        (
            (self.base_byte + idx * self.elem_bytes) / 4,
            self.elem_bytes.div_ceil(4).max(1),
        )
    }

    /// The sanitizer shadow, when this array was allocated under an
    /// enabled sanitizer.
    pub(crate) fn shadow(&self) -> Option<&Rc<SmemShadow>> {
        self.shadow.as_ref()
    }

    /// Byte offset of the array within its block's shared-memory pool.
    pub(crate) fn base_byte(&self) -> usize {
        self.base_byte
    }

    /// Storage read bypassing the shadow (warp ops do their own shadow
    /// accounting with warp/lane identity).
    pub(crate) fn raw_get(&self, idx: usize) -> T {
        self.data.borrow()[idx]
    }

    /// Storage write bypassing the shadow (see [`SharedArray::raw_get`]).
    pub(crate) fn raw_set(&self, idx: usize, v: T) {
        self.data.borrow_mut()[idx] = v;
    }

    /// Fills the array with a value (host-style initialization used in
    /// tests; kernels should use [`crate::WarpCtx::smem_scatter`] or the
    /// cost-accounted [`crate::BlockCtx::fill_shared`]).
    pub fn fill(&self, v: T) {
        self.data.borrow_mut().fill(v);
        if let Some(sh) = &self.shadow {
            sh.host_bulk();
        }
    }

    /// Copies the contents out (for assertions).
    pub fn snapshot(&self) -> Vec<T> {
        self.data.borrow().clone()
    }

    /// Raw single-element read, **without** cost accounting.
    ///
    /// For serialized per-lane emulation (e.g. the insertion loop of a
    /// selection kernel): the caller is responsible for charging the
    /// equivalent hardware cost through [`crate::WarpCtx`] (`issue`,
    /// `smem_gather`, …). Under an enabled sanitizer the read still
    /// passes initcheck.
    pub fn read(&self, idx: usize) -> T {
        if let Some(sh) = &self.shadow {
            sh.host_read(idx);
        }
        self.data.borrow()[idx]
    }

    /// Raw single-element write, **without** cost accounting (see
    /// [`SharedArray::read`]).
    pub fn write(&self, idx: usize, v: T) {
        if let Some(sh) = &self.shadow {
            sh.host_write(idx);
        }
        self.data.borrow_mut()[idx] = v;
    }

    /// Raw read-modify-write returning the previous value; cost and
    /// shadow accounting are the caller's job (used by
    /// [`crate::WarpCtx::smem_atomic`]).
    pub(crate) fn rmw(&self, idx: usize, f: impl FnOnce(T) -> T) -> T {
        let mut d = self.data.borrow_mut();
        let old = d[idx];
        d[idx] = f(old);
        old
    }

    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        let r = f(&mut self.data.borrow_mut());
        // Block-collective macro-ops (e.g. the bitonic sort) are
        // internally barrier-synchronized; treat the whole array as
        // freshly initialized with no dangling race history.
        if let Some(sh) = &self.shadow {
            sh.host_bulk();
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_tracks_usage() {
        let pool = SharedMem::new(1024);
        let a = pool.alloc::<f32>(64);
        assert_eq!(pool.used(), 256);
        let b = pool.alloc::<u32>(32);
        assert_eq!(pool.used(), 384);
        assert_eq!(a.len(), 64);
        assert_eq!(b.len(), 32);
    }

    #[test]
    #[should_panic(expected = "shared memory over budget")]
    fn over_budget_allocation_panics() {
        let pool = SharedMem::new(128);
        let _ = pool.alloc::<f64>(17);
    }

    #[test]
    fn lenient_allocation_records_fault_and_continues() {
        let pool = SharedMem::new(128);
        let arr = pool.alloc_lenient::<f64>(17);
        assert_eq!(arr.len(), 17);
        arr.write(16, 4.0);
        assert_eq!(arr.read(16), 4.0);
        match pool.take_fault() {
            Some(SimError::SmemOverBudget {
                requested,
                in_use,
                capacity,
            }) => {
                assert_eq!(requested, 136);
                assert_eq!(in_use, 0);
                assert_eq!(capacity, 128);
            }
            other => panic!("expected SmemOverBudget, got {other:?}"),
        }
        // Only the first fault is kept.
        assert!(pool.take_fault().is_none());
    }

    #[test]
    fn arrays_alias_on_clone() {
        let pool = SharedMem::new(64);
        let a = pool.alloc::<u32>(4);
        let b = a.clone();
        a.write(1, 42);
        assert_eq!(b.read(1), 42);
    }

    #[test]
    fn bank_mapping_wraps_mod_banks() {
        let pool = SharedMem::new(4096);
        let a = pool.alloc::<f32>(128);
        assert_eq!(a.bank_of(0, 32), 0);
        assert_eq!(a.bank_of(31, 32), 31);
        assert_eq!(a.bank_of(32, 32), 0);
        // f64 elements straddle two banks; `bank_of` reports the first,
        // `banks_of` both words.
        let pool2 = SharedMem::new(4096);
        let d = pool2.alloc::<f64>(64);
        assert_eq!(d.bank_of(1, 32), 2);
        assert_eq!(d.banks_of(1, 32), vec![2, 3]);
        assert_eq!(d.banks_of(16, 32), vec![0, 1]);
        // 4-byte elements touch exactly one bank.
        assert_eq!(a.banks_of(5, 32), vec![5]);
    }

    #[test]
    fn base_offset_shifts_banks() {
        let pool = SharedMem::new(4096);
        let _pad = pool.alloc::<f32>(1);
        let a = pool.alloc::<f32>(8);
        assert_eq!(a.bank_of(0, 32), 1);
    }
}
