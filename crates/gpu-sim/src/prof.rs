//! `prof` — an opt-in Nsight-Compute/CUPTI analog for the simulator.
//!
//! Kernels open named NVTX-style ranges with [`crate::BlockCtx::range`]
//! and [`crate::WarpCtx::range`]; the profiler snapshots the block's
//! [`Counters`] at the boundaries and attributes every delta — issues,
//! divergence serialization, global/shared traffic, bank replays,
//! atomics, barriers — to the innermost active range. Nested ranges
//! aggregate upward: a parent's *inclusive* counters contain its
//! children, its *exclusive* counters do not, and the identity
//!
//! ```text
//! Σ exclusive + unattributed == launch total   (fieldwise)
//! ```
//!
//! holds for every launch, so a profile never double-counts and never
//! loses work. Each launch's [`LaunchProfile`] lands on
//! [`crate::LaunchStats`]`::profile` with a per-range breakdown, a
//! hot-spot `Display` report, and a chrome://tracing exporter
//! ([`chrome_trace`]) whose deterministic timestamps derive from the
//! roofline [`CostBreakdown`] — a multi-launch run opens directly in
//! Perfetto / `chrome://tracing`.
//!
//! Profiling off is free by construction: with the profiler disabled the
//! `range` combinators are pure passthroughs, and even when enabled the
//! profiler only ever *reads* counters. A proptest in `tests/profiler.rs`
//! pins [`Counters`] and [`CostBreakdown`] byte-identical with the
//! profiler off vs. on, mirroring the sanitizer's Off-vs-Warn test.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::cost::CostBreakdown;
use crate::counters::Counters;
use crate::device::LaunchStats;

/// Upper bound on retained [`TraceSpan`]s per launch. Aggregated
/// [`RangeStats`] are always complete; only the per-instance timeline is
/// capped, with the overflow counted in [`LaunchProfile::spans_dropped`]
/// so truncation is never silent.
const MAX_SPANS: usize = 65_536;

/// Aggregated statistics for one named range path within one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeStats {
    /// `/`-joined nesting path, e.g. `coo_sweep/flush`.
    pub path: String,
    /// Number of times this range was entered (across blocks and warps).
    pub calls: u64,
    /// Counter deltas attributed to this range alone (children excluded).
    pub exclusive: Counters,
    /// Counter deltas including all nested child ranges.
    pub inclusive: Counters,
    /// Roofline share of the launch's simulated time this range accounts
    /// for: the larger of its issue share of `compute_seconds` and its
    /// byte share of `memory_seconds` (exclusive counters).
    pub est_seconds: f64,
}

/// One range instance on the timeline: a `[begin, end)` interval on the
/// owning block's issue clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// `/`-joined nesting path of the range.
    pub path: String,
    /// Block that executed the range.
    pub block: usize,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Block-local [`Counters::effective_issues`] when the range opened.
    pub begin: u64,
    /// Block-local [`Counters::effective_issues`] when the range closed.
    pub end: u64,
}

/// Per-launch profile: the payload of [`crate::LaunchStats`]`::profile`
/// when the profiler is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchProfile {
    /// Aggregated per-range statistics, sorted by path.
    pub ranges: Vec<RangeStats>,
    /// Individual range instances for timeline export (capped at an
    /// internal limit; see [`Self::spans_dropped`]).
    pub spans: Vec<TraceSpan>,
    /// Spans beyond the retention cap (aggregates above stay complete).
    pub spans_dropped: u64,
    /// Launch-total counters minus everything covered by a top-level
    /// range: work executed outside any `range(...)`.
    pub unattributed: Counters,
    /// The launch-total counters (same as `LaunchStats::counters`).
    pub total: Counters,
    /// The launch's roofline estimate (same as `LaunchStats::cost`).
    pub cost: CostBreakdown,
    /// The straggler block's effective issues — the issue-clock span the
    /// timeline scales onto `cost.total_seconds`.
    pub block_issue_ceiling: u64,
}

impl LaunchProfile {
    /// Ranges sorted hottest-first by exclusive effective issues
    /// (ties broken by path, so ordering is deterministic).
    pub fn by_effective_issues(&self) -> Vec<&RangeStats> {
        let mut v: Vec<&RangeStats> = self.ranges.iter().collect();
        v.sort_by(|a, b| {
            b.exclusive
                .effective_issues()
                .cmp(&a.exclusive.effective_issues())
                .then_with(|| a.path.cmp(&b.path))
        });
        v
    }

    /// Ranges sorted hottest-first by exclusive global bytes moved.
    pub fn by_global_bytes(&self) -> Vec<&RangeStats> {
        let mut v: Vec<&RangeStats> = self.ranges.iter().collect();
        v.sort_by(|a, b| {
            b.exclusive
                .global_bytes
                .cmp(&a.exclusive.global_bytes)
                .then_with(|| a.path.cmp(&b.path))
        });
        v
    }
}

impl fmt::Display for LaunchProfile {
    /// Hot-spot report: every range sorted by exclusive effective
    /// issues, the unattributed remainder, and the top movers of bytes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_eff = self.total.effective_issues().max(1) as f64;
        writeln!(
            f,
            "{} range(s), {} span(s){}:",
            self.ranges.len(),
            self.spans.len(),
            if self.spans_dropped > 0 {
                format!(" (+{} dropped)", self.spans_dropped)
            } else {
                String::new()
            }
        )?;
        writeln!(
            f,
            "  {:<34} {:>8} {:>12} {:>7} {:>14} {:>11}",
            "range", "calls", "eff issues", "share", "global bytes", "est sec"
        )?;
        for r in self.by_effective_issues() {
            writeln!(
                f,
                "  {:<34} {:>8} {:>12} {:>6.1}% {:>14} {:>11.3e}",
                r.path,
                r.calls,
                r.exclusive.effective_issues(),
                r.exclusive.effective_issues() as f64 / total_eff * 100.0,
                r.exclusive.global_bytes,
                r.est_seconds,
            )?;
        }
        writeln!(
            f,
            "  {:<34} {:>8} {:>12} {:>6.1}% {:>14}",
            "(unattributed)",
            "-",
            self.unattributed.effective_issues(),
            self.unattributed.effective_issues() as f64 / total_eff * 100.0,
            self.unattributed.global_bytes,
        )?;
        let movers: Vec<String> = self
            .by_global_bytes()
            .into_iter()
            .take(3)
            .filter(|r| r.exclusive.global_bytes > 0)
            .map(|r| format!("{} ({} B)", r.path, r.exclusive.global_bytes))
            .collect();
        if movers.is_empty() {
            write!(f, "  top by bytes moved: (none)")
        } else {
            write!(f, "  top by bytes moved: {}", movers.join(", "))
        }
    }
}

#[derive(Debug, Default)]
struct RangeAcc {
    calls: u64,
    exclusive: Counters,
    inclusive: Counters,
}

#[derive(Debug, Default)]
pub(crate) struct ProfData {
    ranges: BTreeMap<String, RangeAcc>,
    spans: Vec<TraceSpan>,
    spans_dropped: u64,
    /// Sum of top-level inclusive deltas over all blocks — everything a
    /// range covered. `total − top_level` is the unattributed remainder.
    top_level: Counters,
}

/// Launch-wide collector behind the `Rc` that every block's
/// [`BlockProfiler`] shares, mirroring the sanitizer's
/// `LaunchSanitizer`/`BlockSanitizer` split.
#[derive(Debug, Default)]
pub struct LaunchProfiler {
    data: RefCell<ProfData>,
}

impl LaunchProfiler {
    /// Fresh collector for one launch.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, span: TraceSpan, exclusive: &Counters, inclusive: &Counters) {
        let mut d = self.data.borrow_mut();
        let acc = d.ranges.entry(span.path.clone()).or_default();
        acc.calls += 1;
        acc.exclusive.merge(exclusive);
        acc.inclusive.merge(inclusive);
        if d.spans.len() < MAX_SPANS {
            d.spans.push(span);
        } else {
            d.spans_dropped += 1;
        }
    }

    /// Extracts this collector's raw data. The parallel executor gives
    /// every block its own `LaunchProfiler`, takes the data on the
    /// worker thread, and merges the pieces in block order with
    /// [`Self::absorb`] — reproducing the serial collector's contents
    /// exactly (range aggregates are additive; spans concatenate in the
    /// serial emission order, which *is* block order).
    pub(crate) fn take_data(&self) -> ProfData {
        self.data.take()
    }

    /// Merges one block's extracted data into this launch-wide
    /// collector, preserving the serial span cap: retained spans are the
    /// first [`MAX_SPANS`] in block order, the rest are counted in
    /// `spans_dropped` — the same set and count the serial path's
    /// launch-wide cap produces.
    pub(crate) fn absorb(&self, piece: ProfData) {
        let mut d = self.data.borrow_mut();
        for (path, acc) in piece.ranges {
            let slot = d.ranges.entry(path).or_default();
            slot.calls += acc.calls;
            slot.exclusive.merge(&acc.exclusive);
            slot.inclusive.merge(&acc.inclusive);
        }
        d.spans_dropped += piece.spans_dropped;
        for span in piece.spans {
            if d.spans.len() < MAX_SPANS {
                d.spans.push(span);
            } else {
                d.spans_dropped += 1;
            }
        }
        d.top_level.merge(&piece.top_level);
    }

    /// Folds the collected data into the launch's profile. Called once by
    /// `Device::try_launch` after the cost estimate exists.
    pub(crate) fn finish(
        &self,
        total: Counters,
        cost: CostBreakdown,
        block_issue_ceiling: u64,
    ) -> LaunchProfile {
        let d = self.data.take();
        let ranges = d
            .ranges
            .into_iter()
            .map(|(path, acc)| {
                let est = est_seconds(&acc.exclusive, &total, &cost);
                RangeStats {
                    path,
                    calls: acc.calls,
                    exclusive: acc.exclusive,
                    inclusive: acc.inclusive,
                    est_seconds: est,
                }
            })
            .collect();
        LaunchProfile {
            ranges,
            spans: d.spans,
            spans_dropped: d.spans_dropped,
            unattributed: total.delta_since(&d.top_level),
            total,
            cost,
            block_issue_ceiling,
        }
    }
}

/// Roofline share of one range: the larger of its issue share of the
/// launch's compute time and its byte share of the memory time — the
/// same `max(compute, memory)` shape as the launch-level estimate.
fn est_seconds(c: &Counters, total: &Counters, cost: &CostBreakdown) -> f64 {
    let issue_share = if total.effective_issues() == 0 {
        0.0
    } else {
        c.effective_issues() as f64 / total.effective_issues() as f64
    };
    let byte_share = if total.global_bytes == 0 {
        0.0
    } else {
        c.global_bytes as f64 / total.global_bytes as f64
    };
    (issue_share * cost.compute_seconds).max(byte_share * cost.memory_seconds)
}

#[derive(Debug)]
struct OpenRange {
    path: String,
    snapshot: Counters,
    /// Inclusive deltas of directly nested child ranges, subtracted from
    /// this range's own delta to form its exclusive counters.
    child_inclusive: Counters,
}

/// Per-block profiler handle threaded into [`crate::BlockCtx`] (and, by
/// reference, every [`crate::WarpCtx`]). Holds the open-range stack; all
/// mutation goes through interior mutability so `range` can hand the
/// kernel closure the same `&mut` context it already had.
#[derive(Debug)]
pub struct BlockProfiler {
    launch: Rc<LaunchProfiler>,
    block_id: usize,
    stack: RefCell<Vec<OpenRange>>,
}

impl BlockProfiler {
    pub(crate) fn new(launch: Rc<LaunchProfiler>, block_id: usize) -> Self {
        Self {
            launch,
            block_id,
            stack: RefCell::new(Vec::new()),
        }
    }

    /// Opens a nested range named `name`, snapshotting the block
    /// counters. Paired with [`Self::close`] by the scoped `range`
    /// combinators, so ranges can never leak open.
    pub(crate) fn open(&self, name: &str, current: &Counters) {
        let mut stack = self.stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{}", parent.path, name),
            None => name.to_string(),
        };
        stack.push(OpenRange {
            path,
            snapshot: *current,
            child_inclusive: Counters::new(),
        });
    }

    /// Closes the innermost range: the counter delta since its snapshot
    /// is its inclusive cost, minus nested children its exclusive cost.
    pub(crate) fn close(&self, current: &Counters) {
        let mut stack = self.stack.borrow_mut();
        let open = stack.pop().expect("profiler range close without open");
        let inclusive = current.delta_since(&open.snapshot);
        let exclusive = inclusive.delta_since(&open.child_inclusive);
        let depth = stack.len();
        if let Some(parent) = stack.last_mut() {
            parent.child_inclusive.merge(&inclusive);
        } else {
            self.launch.data.borrow_mut().top_level.merge(&inclusive);
        }
        drop(stack);
        self.launch.record(
            TraceSpan {
                path: open.path,
                block: self.block_id,
                depth,
                begin: open.snapshot.effective_issues(),
                end: current.effective_issues(),
            },
            &exclusive,
            &inclusive,
        );
    }
}

/// Escapes a string for embedding inside a JSON string literal (the
/// workspace is offline and serde-free, so JSON is written by hand).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Wraps pre-rendered `trace_event` objects in the chrome://tracing
/// envelope. Shared by the kernel profiler's [`chrome_trace`] and
/// downstream exporters (the serving layer's per-request trace), so
/// every trace the workspace writes opens in Perfetto the same way.
pub fn chrome_trace_envelope(events: &[String]) -> String {
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

/// Serializes a launch sequence's profiles as chrome://tracing
/// `trace_event` JSON, loadable in Perfetto.
///
/// Layout: one *process* per launch (pid = launch index, named after the
/// kernel), one *thread* per block (tid = block id). Timestamps are
/// deterministic sim time: each block's issue clock is scaled so the
/// straggler block spans the launch's roofline `total_seconds`, and
/// launches are laid end to end in submission order. Launches without a
/// profile (profiler off) are skipped.
pub fn chrome_trace(launches: &[LaunchStats]) -> String {
    let mut events: Vec<String> = Vec::new();
    let mut offset_us = 0.0f64;
    for (li, stats) in launches.iter().enumerate() {
        let Some(p) = &stats.profile else {
            continue;
        };
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{li},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&stats.name)
        ));
        let scale_us = p.cost.total_seconds * 1e6 / p.block_issue_ceiling.max(1) as f64;
        for s in &p.spans {
            let ts = offset_us + s.begin as f64 * scale_us;
            let dur = s.end.saturating_sub(s.begin) as f64 * scale_us;
            let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"range\",\"ph\":\"X\",\"ts\":{ts:.4},\
                 \"dur\":{dur:.4},\"pid\":{li},\"tid\":{},\
                 \"args\":{{\"path\":\"{}\",\"depth\":{}}}}}",
                json_escape(leaf),
                s.block,
                json_escape(&s.path),
                s.depth
            ));
        }
        offset_us += p.cost.total_seconds * 1e6;
    }
    chrome_trace_envelope(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, LaunchConfig};
    use crate::warp::lanes_from_fn;

    fn profiled_device() -> Device {
        Device::volta().with_profiler(true)
    }

    #[test]
    fn ranges_attribute_counter_deltas() {
        let dev = profiled_device();
        let buf = dev.buffer_from_slice(&[1.0f32; 64]);
        let stats = dev.launch("attr", LaunchConfig::new(2, 32, 0), |block| {
            block.run_warps(|w| {
                w.range("load", |w| {
                    let idx = lanes_from_fn(Some);
                    let _ = w.global_gather(&buf, &idx);
                });
                w.range("math", |w| w.issue(10));
            });
        });
        let p = stats.profile.as_ref().expect("profiler on");
        assert_eq!(p.ranges.len(), 2);
        let load = p.ranges.iter().find(|r| r.path == "load").unwrap();
        let math = p.ranges.iter().find(|r| r.path == "math").unwrap();
        assert_eq!(load.calls, 2); // one per block
        assert_eq!(load.exclusive.issues, 2);
        assert_eq!(load.exclusive.global_transactions, 2);
        assert_eq!(math.exclusive.issues, 20);
        assert_eq!(math.exclusive.global_transactions, 0);
        assert_eq!(p.unattributed.issues, 0);
        assert_eq!(p.total, stats.counters);
    }

    #[test]
    fn nested_ranges_aggregate_upward() {
        let dev = profiled_device();
        let stats = dev.launch("nest", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                w.range("outer", |w| {
                    w.issue(3);
                    w.range("inner", |w| w.issue(7));
                });
            });
        });
        let p = stats.profile.as_ref().unwrap();
        let outer = p.ranges.iter().find(|r| r.path == "outer").unwrap();
        let inner = p.ranges.iter().find(|r| r.path == "outer/inner").unwrap();
        assert_eq!(inner.exclusive.issues, 7);
        assert_eq!(inner.inclusive.issues, 7);
        assert_eq!(outer.exclusive.issues, 3);
        assert_eq!(outer.inclusive.issues, 10);
        // Exclusive sums + unattributed cover the launch exactly.
        let sum: u64 = p.ranges.iter().map(|r| r.exclusive.issues).sum();
        assert_eq!(sum + p.unattributed.issues, stats.counters.issues);
        // The inner span nests inside the outer span on the issue clock.
        let os = p.spans.iter().find(|s| s.path == "outer").unwrap();
        let is_ = p.spans.iter().find(|s| s.path == "outer/inner").unwrap();
        assert!(os.begin <= is_.begin && is_.end <= os.end);
        assert_eq!(os.depth, 0);
        assert_eq!(is_.depth, 1);
    }

    #[test]
    fn work_outside_ranges_is_unattributed() {
        let dev = profiled_device();
        let stats = dev.launch("out", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                w.issue(5); // no range
                w.range("covered", |w| w.issue(2));
            });
            block.sync(); // no range
        });
        let p = stats.profile.as_ref().unwrap();
        assert_eq!(p.unattributed.issues, 6); // 5 + 1 sync issue (1 warp)
        assert_eq!(p.unattributed.barriers, 1);
    }

    #[test]
    fn block_level_ranges_cover_macro_ops() {
        let dev = profiled_device();
        let stats = dev.launch("blk", LaunchConfig::new(1, 64, 1024), |block| {
            let arr = block.alloc_shared::<f32>(128);
            block.range("fill", |block| block.fill_shared(&arr, 1.0));
            block.range("sync", |block| block.sync());
        });
        let p = stats.profile.as_ref().unwrap();
        let fill = p.ranges.iter().find(|r| r.path == "fill").unwrap();
        assert!(fill.exclusive.smem_accesses > 0);
        let sync = p.ranges.iter().find(|r| r.path == "sync").unwrap();
        assert_eq!(sync.exclusive.barriers, 1);
        assert_eq!(p.unattributed.issues, 0);
    }

    #[test]
    fn profiler_off_yields_no_profile() {
        let dev = Device::volta();
        let stats = dev.launch("off", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| w.range("r", |w| w.issue(1)));
        });
        assert!(stats.profile.is_none());
        assert_eq!(stats.counters.issues, 1);
    }

    #[test]
    fn per_launch_override_beats_device_default() {
        let dev = Device::volta();
        let cfg = LaunchConfig::new(1, 32, 0).with_profiler(true);
        let stats = dev.launch("ovr", cfg, |block| {
            block.run_warps(|w| w.range("r", |w| w.issue(1)));
        });
        assert!(stats.profile.is_some());
        let dev2 = profiled_device();
        let cfg2 = LaunchConfig::new(1, 32, 0).with_profiler(false);
        let stats2 = dev2.launch("ovr2", cfg2, |block| {
            block.run_warps(|w| w.issue(1));
        });
        assert!(stats2.profile.is_none());
    }

    #[test]
    fn est_seconds_shares_the_roofline() {
        let dev = profiled_device();
        let stats = dev.launch("est", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                w.range("all", |w| w.issue(100));
            });
        });
        let p = stats.profile.as_ref().unwrap();
        let all = p.ranges.iter().find(|r| r.path == "all").unwrap();
        // The only range owns every issue → its share is the whole
        // compute side of the roofline.
        assert!((all.est_seconds - p.cost.compute_seconds).abs() < 1e-18);
    }

    #[test]
    fn display_reports_hot_spots() {
        let dev = profiled_device();
        let buf = dev.buffer_from_slice(&[0u32; 256]);
        let stats = dev.launch("disp", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| {
                w.range("hot", |w| w.issue(1000));
                w.range("mover", |w| {
                    let idx = lanes_from_fn(Some);
                    let _ = w.global_gather(&buf, &idx);
                });
            });
        });
        let p = stats.profile.as_ref().unwrap();
        let s = p.to_string();
        assert!(s.contains("hot"), "{s}");
        assert!(s.contains("(unattributed)"), "{s}");
        assert!(s.contains("top by bytes moved: mover"), "{s}");
        // Sorted hottest-first.
        assert!(s.find("hot").unwrap() < s.find("mover").unwrap(), "{s}");
    }

    #[test]
    fn chrome_trace_emits_events_per_launch() {
        let dev = profiled_device();
        let buf = dev.buffer_from_slice(&[1.0f32; 64]);
        let mk = |name: &str| {
            dev.launch(name, LaunchConfig::new(2, 32, 0), |block| {
                block.run_warps(|w| {
                    w.range("phase_a", |w| {
                        let idx = lanes_from_fn(Some);
                        let _ = w.global_gather(&buf, &idx);
                    });
                    w.range("phase_b", |w| w.issue(5));
                });
            })
        };
        let launches = vec![mk("first_kernel"), mk("second_kernel")];
        let json = chrome_trace(&launches);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"first_kernel\""));
        assert!(json.contains("\"name\":\"second_kernel\""));
        assert!(json.contains("\"name\":\"phase_a\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":1"));
        // Spans from both blocks appear as distinct threads.
        assert!(json.contains("\"tid\":0") && json.contains("\"tid\":1"));
    }

    #[test]
    fn chrome_trace_skips_unprofiled_launches() {
        let dev = Device::volta();
        let stats = dev.launch("plain", LaunchConfig::new(1, 32, 0), |block| {
            block.run_warps(|w| w.issue(1));
        });
        let json = chrome_trace(&[stats]);
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
