//! Device handle, launch configuration and block execution.

use std::any::Any;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::cost::{estimate_with_blocks, CostBreakdown};
use crate::counters::Counters;
use crate::fault::{FaultPlan, FaultState, LaunchFaults, WatchdogAbort};
use crate::global::GlobalBuffer;
use crate::prof::{BlockProfiler, LaunchProfile, LaunchProfiler, ProfData};
use crate::sanitizer::{BlockSanitizer, LaunchSanitizer, SanitizerMode, SanitizerReport, SimError};
use crate::shared::{SharedArray, SharedMem};
use crate::spec::{DeviceSpec, Occupancy};
use crate::warp::{AtomicDefer, L2Tracker, WarpCtx, WARP_SIZE};

/// `GPU_SIM_HOST_THREADS` overrides the builder-configured host thread
/// count process-wide (read once; `1` forces the serial path).
fn env_host_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("GPU_SIM_HOST_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Everything one block's execution produced, captured in a per-block
/// slot by the parallel executor and merged in block order so the
/// result is indistinguishable from the serial loop.
struct BlockOutcome {
    counters: Counters,
    reports: Vec<SanitizerReport>,
    reports_dropped: usize,
    prof: Option<ProfData>,
    fault: Option<SimError>,
    panic: Option<Box<dyn Any + Send>>,
    atomics: Vec<Box<dyn FnOnce() + Send>>,
}

/// Geometry and resources of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (multiple of the warp size; max 1024).
    pub threads_per_block: usize,
    /// Shared memory requested per block, in bytes.
    pub smem_per_block: usize,
    /// Per-launch sanitizer override; `None` uses the device-wide mode
    /// ([`Device::with_sanitizer`]).
    pub sanitizer: Option<SanitizerMode>,
    /// Per-launch profiler override; `None` uses the device-wide setting
    /// ([`Device::with_profiler`]).
    pub profiler: Option<bool>,
    /// Per-launch watchdog budget in effective warp-instruction issues
    /// per block; `None` uses the device-wide budget
    /// ([`Device::with_watchdog`], default unarmed). A block exceeding
    /// the budget aborts the launch with [`SimError::WatchdogTimeout`].
    pub watchdog: Option<u64>,
}

impl LaunchConfig {
    /// Convenience constructor (device-wide sanitizer and profiler modes).
    pub fn new(blocks: usize, threads_per_block: usize, smem_per_block: usize) -> Self {
        Self {
            blocks,
            threads_per_block,
            smem_per_block,
            sanitizer: None,
            profiler: None,
            watchdog: None,
        }
    }

    /// Overrides the sanitizer mode for this launch only.
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = Some(mode);
        self
    }

    /// Overrides the profiler for this launch only.
    pub fn with_profiler(mut self, enabled: bool) -> Self {
        self.profiler = Some(enabled);
        self
    }

    /// Arms the launch watchdog with a budget of `issues` effective
    /// warp-instruction issues per block. Derive the budget from the
    /// cost model via [`Device::watchdog_budget`], or pass an absolute
    /// count. A block that exceeds it aborts the launch with
    /// [`SimError::WatchdogTimeout`] instead of looping forever.
    pub fn with_watchdog(mut self, issues: u64) -> Self {
        self.watchdog = Some(issues);
        self
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block.div_ceil(WARP_SIZE).max(1)
    }
}

/// Aggregated result of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Kernel name (for reporting).
    pub name: String,
    /// The launch geometry.
    pub config: LaunchConfig,
    /// Occupancy achieved under the device's limits.
    pub occupancy: Occupancy,
    /// Event counters summed over all blocks.
    pub counters: Counters,
    /// Roofline cost estimate.
    pub cost: CostBreakdown,
    /// Findings collected by the sanitizer (empty when it is off — and,
    /// for a correct kernel, when it is on).
    pub sanitizer_reports: Vec<SanitizerReport>,
    /// Per-range profile when the profiler was enabled for this launch
    /// ([`Device::with_profiler`] / [`LaunchConfig::with_profiler`]).
    pub profile: Option<LaunchProfile>,
}

impl LaunchStats {
    /// Simulated execution time in seconds.
    pub fn sim_seconds(&self) -> f64 {
        self.cost.total_seconds
    }
}

/// Execution context of one thread block.
///
/// Kernels receive a `BlockCtx` per block, allocate shared memory, then
/// run their warps in lockstep phases via [`BlockCtx::run_warps`].
/// Because the paper's kernels only communicate across warps through
/// barriers and global atomics, sequential warp execution inside a block
/// is behaviour-preserving.
#[derive(Debug)]
pub struct BlockCtx<'a> {
    /// Index of this block in the grid.
    pub block_id: usize,
    /// Total blocks in the grid.
    pub grid_blocks: usize,
    warps_per_block: usize,
    spec: &'a DeviceSpec,
    shared: SharedMem,
    counters: Counters,
    l2: &'a mut L2Tracker,
    san: Rc<BlockSanitizer>,
    prof: Option<Rc<BlockProfiler>>,
    faults: Rc<LaunchFaults>,
    /// `Some` when the block runs on a parallel-executor worker: global
    /// atomics are logged here instead of applied eagerly, then replayed
    /// in block order after the grid finishes (see [`AtomicDefer`]).
    deferred: Option<&'a AtomicDefer>,
}

impl<'a> BlockCtx<'a> {
    /// Warps in this block.
    pub fn warps(&self) -> usize {
        self.warps_per_block
    }

    /// Threads in this block.
    pub fn threads(&self) -> usize {
        self.warps_per_block * WARP_SIZE
    }

    /// The device spec (for capacity queries inside kernels).
    pub fn spec(&self) -> &DeviceSpec {
        self.spec
    }

    /// Allocates a zero-initialized shared-memory array.
    ///
    /// An over-budget request records a [`SimError::SmemOverBudget`] that
    /// [`Device::try_launch`] surfaces after the block finishes (or
    /// [`Device::launch`] panics with) — the same error path kernel-side
    /// capacity planning uses, per the sizing discipline of §3.3.2.
    pub fn alloc_shared<T: Copy + Default>(&self, len: usize) -> SharedArray<T> {
        if self.faults.take_injected_smem_failure() {
            let bytes = len * std::mem::size_of::<T>();
            self.faults.record(SimError::CapacityOverflow {
                kernel: self.faults.kernel().to_string(),
                resource: "smem-allocator".to_string(),
                detail: format!("injected allocation failure ({bytes} bytes requested)"),
            });
        }
        self.shared.alloc_lenient(len)
    }

    /// Cost-accounted block-collective fill: every thread stores one
    /// element per round until the array is covered (the
    /// grid-stride-style `smem[tid] = v` initialization loop real kernels
    /// run before their first barrier). Charges one issue and one
    /// shared-memory access per warp per round.
    pub fn fill_shared<T: Copy + Default>(&mut self, arr: &SharedArray<T>, v: T) {
        let rounds = arr.len().div_ceil(self.threads().max(1)).max(1);
        let warp_stores = (rounds * self.warps_per_block) as u64;
        self.counters.issues += warp_stores;
        self.counters.smem_accesses += warp_stores;
        arr.fill(v);
    }

    /// Runs `f` once per warp of the block, in lockstep order.
    pub fn run_warps(&mut self, mut f: impl FnMut(&mut WarpCtx)) {
        for w in 0..self.warps_per_block {
            let mut ctx = WarpCtx {
                block_id: self.block_id,
                warp_id: w,
                warps_per_block: self.warps_per_block,
                spec: self.spec,
                counters: &mut self.counters,
                l2: self.l2,
                san: self.san.as_ref(),
                prof: self.prof.as_deref(),
                faults: self.faults.as_ref(),
                watchdog: self.faults.watchdog(),
                deferred: self.deferred,
            };
            f(&mut ctx);
        }
    }

    /// Runs `f` inside a named NVTX-style profiler range covering
    /// block-level work (barriers, collective fills, sorting networks).
    /// With the profiler off this is a pure passthrough; with it on, the
    /// counter delta across `f` is attributed to the range (see
    /// [`crate::prof`]).
    pub fn range<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        match self.prof.clone() {
            Some(p) => {
                p.open(name, &self.counters);
                let r = f(self);
                p.close(&self.counters);
                r
            }
            None => f(self),
        }
    }

    /// Block-wide barrier (`__syncthreads()`); charges one barrier event
    /// and one issue per warp, advances the racecheck epoch, and
    /// synccheck-verifies matched arrival counts across warps.
    pub fn sync(&mut self) {
        self.counters.barriers += 1;
        self.counters.issues += self.warps_per_block as u64;
        self.san.block_sync();
        if let Some(budget) = self.faults.watchdog() {
            if self.counters.effective_issues() > budget {
                std::panic::panic_any(WatchdogAbort);
            }
        }
    }

    /// Direct counter access for block-level macro-ops (sorting networks
    /// charge their cost analytically rather than replaying every
    /// compare-exchange through a `WarpCtx`).
    pub(crate) fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }
}

/// A simulated GPU.
///
/// # Example
///
/// ```
/// use gpu_sim::{Device, LaunchConfig, lanes_from_fn};
///
/// let dev = Device::volta();
/// let input = dev.buffer_from_slice(&[1.0f32; 64]);
/// let output = dev.buffer::<f32>(64);
/// // Double every element with 1 block of 64 threads (2 warps).
/// let stats = dev.launch("double", LaunchConfig::new(1, 64, 0), |block| {
///     block.run_warps(|w| {
///         let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
///         let vals = w.global_gather(&input, &idx);
///         let doubled = lanes_from_fn(|l| vals[l] * 2.0);
///         w.global_scatter(&output, &idx, &doubled);
///     });
/// });
/// assert_eq!(output.host_get(10), 2.0);
/// assert!(stats.sim_seconds() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    sanitizer: SanitizerMode,
    profiler: bool,
    fault: Option<Rc<FaultState>>,
    watchdog: Option<u64>,
    host_threads: Option<usize>,
}

impl Device {
    /// Creates a device from a spec (sanitizer off, profiler off).
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            sanitizer: SanitizerMode::Off,
            profiler: false,
            fault: None,
            watchdog: None,
            host_threads: None,
        }
    }

    /// A simulated V100 (the paper's benchmark GPU).
    pub fn volta() -> Self {
        Self::new(DeviceSpec::volta_v100())
    }

    /// A simulated A100.
    pub fn ampere() -> Self {
        Self::new(DeviceSpec::ampere_a100())
    }

    /// Sets the device-wide sanitizer mode (individual launches may
    /// override it via [`LaunchConfig::with_sanitizer`]).
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// The device-wide sanitizer mode.
    pub fn sanitizer(&self) -> SanitizerMode {
        self.sanitizer
    }

    /// Enables the per-range profiler device-wide (individual launches
    /// may override it via [`LaunchConfig::with_profiler`]). Profiled
    /// launches carry a [`LaunchProfile`] in their stats; unprofiled
    /// launches pay nothing (`range` is a passthrough).
    pub fn with_profiler(mut self, enabled: bool) -> Self {
        self.profiler = enabled;
        self
    }

    /// Whether the profiler is enabled device-wide.
    pub fn profiler(&self) -> bool {
        self.profiler
    }

    /// Attaches a deterministic [`FaultPlan`]: every subsequent launch
    /// consumes one launch ordinal and rolls the plan's armed fault
    /// classes against it (see [`crate::fault`]). Clones of the device
    /// share the ordinal counter, so a fixed launch sequence sees a
    /// fixed fault sequence. An unarmed plan removes injection entirely.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan.is_armed().then(|| Rc::new(FaultState::new(plan)));
        self
    }

    /// The attached fault plan, when one is armed.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_deref().map(|s| &s.plan)
    }

    /// Arms the launch watchdog device-wide with a budget of `issues`
    /// effective warp-instruction issues per block (individual launches
    /// may override it via [`LaunchConfig::with_watchdog`]). A block
    /// exceeding the budget aborts its launch with
    /// [`SimError::WatchdogTimeout`] — a runaway kernel (e.g. a
    /// livelocked probe loop) becomes a typed error instead of a hung
    /// process.
    pub fn with_watchdog(mut self, issues: u64) -> Self {
        self.watchdog = Some(issues);
        self
    }

    /// The device-wide watchdog budget, when armed.
    pub fn watchdog(&self) -> Option<u64> {
        self.watchdog
    }

    /// Sets how many host worker threads execute the blocks of each
    /// launch. The default (1) runs the grid in the classic serial
    /// loop; `threads > 1` dispatches block indices to a scoped
    /// [`std::thread`] pool while keeping counters, sanitizer reports,
    /// profiles, faults and every byte of output identical to serial
    /// execution (per-block slots merged in block order; global atomics
    /// deferred and replayed in block order). The environment variable
    /// `GPU_SIM_HOST_THREADS` overrides this setting process-wide —
    /// `GPU_SIM_HOST_THREADS=1` forces the serial path.
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = Some(threads.max(1));
        self
    }

    /// The effective host thread count for launches on this device
    /// (environment override, then builder setting, then 1).
    pub fn host_threads(&self) -> usize {
        env_host_threads().unwrap_or_else(|| self.host_threads.unwrap_or(1))
    }

    /// Converts a simulated-seconds deadline into a per-block
    /// effective-issue watchdog budget for `config`'s geometry, using
    /// the inverse of the cost model's compute roofline
    /// ([`crate::cost::per_block_issue_budget`]).
    pub fn watchdog_budget(&self, config: &LaunchConfig, seconds: f64) -> u64 {
        let occupancy = self
            .spec
            .occupancy(config.threads_per_block, config.smem_per_block);
        crate::cost::per_block_issue_budget(&self.spec, config.blocks, &occupancy, seconds)
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Allocates a zeroed device buffer of `len` elements.
    pub fn buffer<T: Copy + Default>(&self, len: usize) -> GlobalBuffer<T> {
        GlobalBuffer::zeroed(len)
    }

    /// Copies host data into a new device buffer.
    pub fn buffer_from_slice<T: Copy + Default>(&self, data: &[T]) -> GlobalBuffer<T> {
        GlobalBuffer::from_slice(data)
    }

    /// Launches a kernel over `config.blocks` blocks, invoking `kernel`
    /// once per block, and returns the aggregated stats with a simulated
    /// time estimate.
    ///
    /// # Panics
    ///
    /// Panics with [`Device::try_launch`]'s error text on an invalid
    /// configuration, an over-budget shared-memory allocation, or (under
    /// [`SanitizerMode::Fail`]) any sanitizer finding.
    pub fn launch(
        &self,
        name: &str,
        config: LaunchConfig,
        kernel: impl Fn(&mut BlockCtx) + Sync,
    ) -> LaunchStats {
        self.try_launch(name, config, kernel)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible launch: invalid geometry, over-budget shared-memory
    /// allocations, and (under [`SanitizerMode::Fail`]) sanitizer findings
    /// come back as [`SimError`] values instead of panics.
    ///
    /// With [`Device::with_host_threads`] (or `GPU_SIM_HOST_THREADS`)
    /// above 1, blocks execute on a host thread pool; results are
    /// bit-identical to the serial loop.
    pub fn try_launch(
        &self,
        name: &str,
        config: LaunchConfig,
        kernel: impl Fn(&mut BlockCtx) + Sync,
    ) -> Result<LaunchStats, SimError> {
        if config.threads_per_block == 0
            || config.threads_per_block > self.spec.max_threads_per_block
            || !config.threads_per_block.is_multiple_of(WARP_SIZE)
        {
            return Err(SimError::InvalidLaunchConfig(format!(
                "invalid threads_per_block {}",
                config.threads_per_block
            )));
        }
        if config.smem_per_block > self.spec.shared_mem_per_block {
            return Err(SimError::InvalidLaunchConfig(format!(
                "smem_per_block {} exceeds device limit {}",
                config.smem_per_block, self.spec.shared_mem_per_block
            )));
        }
        let mode = config.sanitizer.unwrap_or(self.sanitizer);
        let lsan = Rc::new(LaunchSanitizer::new(mode, name));
        let lprof = config
            .profiler
            .unwrap_or(self.profiler)
            .then(|| Rc::new(LaunchProfiler::new()));
        let watchdog = config.watchdog.or(self.watchdog);
        let inject = match &self.fault {
            Some(state) => {
                let ordinal = state.next_ordinal();
                let set = state.plan.decide(ordinal);
                if set.transient {
                    return Err(SimError::TransientFault {
                        kernel: name.to_string(),
                        detail: format!("injected transient launch failure (launch #{ordinal})"),
                    });
                }
                Some(set)
            }
            None => None,
        };
        let mut total = Counters::new();
        let mut max_block_issues = 0u64;
        let host_threads = self.host_threads();
        // Injection-armed launches stay serial: fault arming (bit flips,
        // allocator failures, hash overflows) is keyed to launch-wide
        // "first access" state that per-block replicas would re-fire.
        if host_threads > 1 && config.blocks > 1 && inject.is_none() {
            let spec = &self.spec;
            let warps_per_block = config.warps_per_block();
            let profiling = lprof.is_some();
            // One block, start to finish, on whichever worker claimed
            // it: fresh per-block collectors feed a `BlockOutcome` slot.
            // Panics are always caught here (they must not cross the
            // scope join) and re-classified during the ordered merge.
            let run_block = |b: usize| -> BlockOutcome {
                let broot = Rc::new(LaunchSanitizer::new(mode, name));
                let bsan = Rc::new(BlockSanitizer::new(broot.clone(), b, warps_per_block));
                let bfaults = Rc::new(LaunchFaults::new(name, None, watchdog));
                let bprof = profiling.then(|| Rc::new(LaunchProfiler::new()));
                let defer = AtomicDefer::default();
                let mut l2 = L2Tracker::new();
                let mut block = BlockCtx {
                    block_id: b,
                    grid_blocks: config.blocks,
                    warps_per_block,
                    spec,
                    shared: SharedMem::with_sanitizer(config.smem_per_block, bsan.clone()),
                    counters: Counters::new(),
                    l2: &mut l2,
                    san: bsan,
                    prof: bprof
                        .as_ref()
                        .map(|lp| Rc::new(BlockProfiler::new(lp.clone(), b))),
                    faults: bfaults.clone(),
                    deferred: Some(&defer),
                };
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kernel(&mut block)));
                let fault = block.shared.take_fault().or_else(|| bfaults.take());
                let counters = block.counters;
                drop(block);
                BlockOutcome {
                    counters,
                    reports: broot.take_reports(),
                    reports_dropped: broot.dropped(),
                    prof: bprof.map(|lp| lp.take_data()),
                    fault,
                    panic: caught.err(),
                    atomics: defer.take(),
                }
            };
            let queue = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<BlockOutcome>>> =
                (0..config.blocks).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..host_threads.min(config.blocks) {
                    s.spawn(|| loop {
                        let b = queue.fetch_add(1, Ordering::Relaxed);
                        if b >= config.blocks {
                            break;
                        }
                        let outcome = run_block(b);
                        *slots[b].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                    });
                }
            });
            // Merge in block order. The first block (by index) that
            // panicked or faulted decides the launch's fate exactly as
            // it would have in the serial loop, where later blocks
            // never ran; their outcomes are simply discarded along with
            // the output buffers the caller drops on `Err`.
            for slot in &slots {
                let o = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("parallel executor left a block unexecuted");
                if let Some(payload) = o.panic {
                    if payload.is::<WatchdogAbort>() {
                        return Err(SimError::WatchdogTimeout {
                            kernel: name.to_string(),
                            budget: watchdog.unwrap_or(0),
                        });
                    }
                    std::panic::resume_unwind(payload);
                }
                if let Some(fault) = o.fault {
                    return Err(fault);
                }
                lsan.absorb(o.reports, o.reports_dropped);
                if let (Some(lp), Some(piece)) = (lprof.as_ref(), o.prof) {
                    lp.absorb(piece);
                }
                for apply in o.atomics {
                    apply();
                }
                max_block_issues = max_block_issues.max(o.counters.effective_issues());
                total.merge(&o.counters);
            }
        } else {
            let faults = Rc::new(LaunchFaults::new(name, inject, watchdog));
            for b in 0..config.blocks {
                let bsan = Rc::new(BlockSanitizer::new(
                    lsan.clone(),
                    b,
                    config.warps_per_block(),
                ));
                let mut l2 = L2Tracker::new();
                let mut block = BlockCtx {
                    block_id: b,
                    grid_blocks: config.blocks,
                    warps_per_block: config.warps_per_block(),
                    spec: &self.spec,
                    shared: SharedMem::with_sanitizer(config.smem_per_block, bsan.clone()),
                    counters: Counters::new(),
                    l2: &mut l2,
                    san: bsan,
                    prof: lprof
                        .as_ref()
                        .map(|lp| Rc::new(BlockProfiler::new(lp.clone(), b))),
                    faults: faults.clone(),
                    deferred: None,
                };
                if watchdog.is_some() {
                    // A tripped watchdog unwinds out of the (possibly
                    // livelocked) kernel closure with a sentinel payload;
                    // anything else keeps unwinding.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        kernel(&mut block)
                    }));
                    if let Err(payload) = caught {
                        if payload.is::<WatchdogAbort>() {
                            return Err(SimError::WatchdogTimeout {
                                kernel: name.to_string(),
                                budget: watchdog.unwrap_or(0),
                            });
                        }
                        std::panic::resume_unwind(payload);
                    }
                } else {
                    kernel(&mut block);
                }
                if let Some(fault) = block.shared.take_fault() {
                    return Err(fault);
                }
                if let Some(fault) = faults.take() {
                    return Err(fault);
                }
                max_block_issues = max_block_issues.max(block.counters.effective_issues());
                total.merge(&block.counters);
            }
        }
        let sanitizer_reports = lsan.take_reports();
        if mode == SanitizerMode::Fail && !sanitizer_reports.is_empty() {
            return Err(SimError::SanitizerFailure {
                kernel: name.to_string(),
                reports: sanitizer_reports,
            });
        }
        let occupancy = self
            .spec
            .occupancy(config.threads_per_block, config.smem_per_block);
        let cost = estimate_with_blocks(
            &self.spec,
            config.blocks,
            &occupancy,
            &total,
            max_block_issues,
        );
        let profile = lprof.map(|lp| lp.finish(total, cost, max_block_issues));
        Ok(LaunchStats {
            name: name.to_string(),
            config,
            occupancy,
            counters: total,
            cost,
            sanitizer_reports,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitizer::CheckerKind;
    use crate::warp::lanes_from_fn;

    #[test]
    fn launch_runs_every_block_and_warp() {
        let dev = Device::volta();
        let out = dev.buffer::<f32>(4 * 2 * WARP_SIZE);
        let stats = dev.launch("fill", LaunchConfig::new(4, 64, 0), |block| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
                let vals = lanes_from_fn(|_| 1.0f32);
                w.global_scatter(&out, &idx, &vals);
            });
        });
        assert!(out.to_vec().iter().all(|&v| v == 1.0));
        // 4 blocks × 2 warps × 1 scatter issue.
        assert_eq!(stats.counters.issues, 8);
        assert_eq!(stats.counters.global_transactions, 8);
    }

    #[test]
    fn shared_memory_isolated_per_block() {
        let dev = Device::volta();
        let out = dev.buffer::<f32>(2);
        dev.launch("smem", LaunchConfig::new(2, 32, 1024), |block| {
            let smem = block.alloc_shared::<f32>(1);
            let bid = block.block_id;
            block.run_warps(|w| {
                // Each block writes its id + existing value (should start 0).
                let idx = lanes_from_fn(|l| if l == 0 { Some(0usize) } else { None });
                let prev = w.smem_gather(&smem, &idx);
                let vals = lanes_from_fn(|_| prev[0] + bid as f32 + 1.0);
                w.smem_scatter(&smem, &idx, &vals);
                let oidx = lanes_from_fn(|l| if l == 0 { Some(bid) } else { None });
                let ovals = lanes_from_fn(|_| vals[0]);
                w.global_scatter(&out, &oidx, &ovals);
            });
        });
        // Block 0 wrote 1.0, block 1 wrote 2.0 (no smem leakage).
        assert_eq!(out.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "invalid threads_per_block")]
    fn rejects_non_warp_multiple_blocks() {
        let dev = Device::volta();
        dev.launch("bad", LaunchConfig::new(1, 33, 0), |_| {});
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn rejects_oversized_smem() {
        let dev = Device::volta();
        dev.launch("bad", LaunchConfig::new(1, 32, 10 * 1024 * 1024), |_| {});
    }

    #[test]
    fn barrier_charges_issues() {
        let dev = Device::volta();
        let stats = dev.launch("sync", LaunchConfig::new(3, 128, 0), |block| {
            block.sync();
        });
        assert_eq!(stats.counters.barriers, 3);
        assert_eq!(stats.counters.issues, 12);
    }

    #[test]
    fn stats_report_occupancy_and_cost() {
        let dev = Device::volta();
        let stats = dev.launch("occ", LaunchConfig::new(160, 1024, 48 * 1024), |block| {
            block.run_warps(|w| w.issue(100));
        });
        assert_eq!(stats.occupancy.concurrent_warps_per_sm, 64);
        assert!(stats.sim_seconds() > 0.0);
        assert_eq!(stats.counters.issues, 160 * 32 * 100);
    }

    #[test]
    fn try_launch_surfaces_invalid_config() {
        let dev = Device::volta();
        let err = dev
            .try_launch("bad", LaunchConfig::new(1, 33, 0), |_| {})
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunchConfig(_)));
        assert!(err.to_string().contains("invalid threads_per_block 33"));
    }

    #[test]
    fn try_launch_surfaces_smem_over_budget() {
        let dev = Device::volta();
        let err = dev
            .try_launch("hungry", LaunchConfig::new(1, 32, 128), |block| {
                let arr = block.alloc_shared::<f64>(17);
                // The kernel limps on with a working array...
                assert_eq!(arr.len(), 17);
            })
            .unwrap_err();
        // ...but the launch still fails with the typed error.
        assert!(matches!(
            err,
            SimError::SmemOverBudget {
                requested: 136,
                in_use: 0,
                capacity: 128
            }
        ));
    }

    #[test]
    fn fill_shared_charges_rounds() {
        let dev = Device::volta();
        let stats = dev.launch("fill_smem", LaunchConfig::new(1, 64, 4096), |block| {
            // 192 elements / 64 threads = 3 rounds × 2 warps.
            let arr = block.alloc_shared::<f32>(192);
            block.fill_shared(&arr, 1.5);
            assert!(arr.snapshot().iter().all(|&v| v == 1.5));
        });
        assert_eq!(stats.counters.issues, 6);
        assert_eq!(stats.counters.smem_accesses, 6);
    }

    #[test]
    fn l2_unique_bytes_reset_at_launch_boundaries() {
        // The L2 tracker is per-block ("Per-block record of distinct
        // (buffer, segment) touches"): within one block, re-reading a
        // segment grows `global_bytes` but not `global_bytes_unique`;
        // a new launch (and a new block) starts cold, so the same
        // buffer's compulsory misses are counted afresh.
        let dev = Device::volta();
        let buf = dev.buffer_from_slice(&[1.0f32; 32]);
        let read_twice = |block: &mut BlockCtx| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(Some);
                let _ = w.global_gather(&buf, &idx);
                let _ = w.global_gather(&buf, &idx);
            });
        };
        let first = dev.launch("l2_a", LaunchConfig::new(1, 32, 0), read_twice);
        assert_eq!(first.counters.global_bytes, 256);
        assert_eq!(first.counters.global_bytes_unique, 128);
        let second = dev.launch("l2_b", LaunchConfig::new(1, 32, 0), read_twice);
        // Identical launch, identical cold-cache accounting: the first
        // launch's touches did not carry over.
        assert_eq!(second.counters.global_bytes_unique, 128);
        assert_eq!(second.counters, first.counters);
    }

    #[test]
    fn parallel_execution_matches_serial_bit_for_bit() {
        let run = |threads: usize| {
            let dev = Device::volta()
                .with_host_threads(threads)
                .with_profiler(true)
                .with_sanitizer(SanitizerMode::Warn);
            let n = 8 * 64;
            let out = dev.buffer::<f32>(n);
            let acc = dev.buffer::<f32>(1);
            let stats = dev.launch("par", LaunchConfig::new(8, 64, 0), |block| {
                block.range("body", |block| {
                    block.sync();
                    block.run_warps(|w| {
                        let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
                        let vals = lanes_from_fn(|l| 0.1 + (w.global_thread_id(l) % 7) as f32);
                        w.global_scatter(&out, &idx, &vals);
                        let zero = lanes_from_fn(|_| Some(0usize));
                        // Non-associative-friendly values: f32 addition
                        // order is observable, so replay order matters.
                        w.global_atomic(&acc, &zero, &vals, |x, y| x + y);
                    });
                });
            });
            (out.to_vec(), acc.host_get(0), stats)
        };
        let (out1, acc1, s1) = run(1);
        let (out8, acc8, s8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(acc1.to_bits(), acc8.to_bits());
        assert_eq!(s1.counters, s8.counters);
        assert_eq!(s1.cost.total_seconds, s8.cost.total_seconds);
        let (p1, p8) = (s1.profile.unwrap(), s8.profile.unwrap());
        assert_eq!(p1.ranges.len(), p8.ranges.len());
    }

    #[test]
    fn parallel_watchdog_still_times_out() {
        let dev = Device::volta().with_host_threads(4);
        let cfg = LaunchConfig::new(4, 32, 0).with_watchdog(16);
        let err = dev
            .try_launch("spin", cfg, |block| loop {
                block.sync();
            })
            .unwrap_err();
        assert!(matches!(err, SimError::WatchdogTimeout { budget: 16, .. }));
    }

    #[test]
    fn sanitizer_fail_mode_rejects_oob() {
        let dev = Device::volta().with_sanitizer(SanitizerMode::Fail);
        let buf = dev.buffer::<f32>(8);
        let err = dev
            .try_launch("oob", LaunchConfig::new(1, 32, 0), |block| {
                block.run_warps(|w| {
                    let idx = lanes_from_fn(|l| Some(l * 100));
                    let _ = w.global_gather(&buf, &idx);
                });
            })
            .unwrap_err();
        match err {
            SimError::SanitizerFailure { kernel, reports } => {
                assert_eq!(kernel, "oob");
                assert!(reports.iter().all(|r| r.kind == CheckerKind::Memcheck));
            }
            other => panic!("expected SanitizerFailure, got {other:?}"),
        }
    }

    #[test]
    fn sanitizer_warn_mode_collects_but_completes() {
        let dev = Device::volta();
        let buf = dev.buffer::<f32>(8);
        let cfg = LaunchConfig::new(1, 32, 0).with_sanitizer(SanitizerMode::Warn);
        let stats = dev.launch("oob_warn", cfg, |block| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| (l < 8).then_some(l));
                let bad = lanes_from_fn(|l| if l == 0 { Some(999) } else { None });
                let _ = w.global_gather(&buf, &idx);
                let _ = w.global_gather(&buf, &bad);
            });
        });
        assert_eq!(stats.sanitizer_reports.len(), 1);
        assert_eq!(stats.sanitizer_reports[0].kind, CheckerKind::Memcheck);
        assert_eq!(stats.sanitizer_reports[0].offset, Some(999));
    }
}
