//! Device handle, launch configuration and block execution.

use crate::cost::{estimate_with_blocks, CostBreakdown};
use crate::counters::Counters;
use crate::global::GlobalBuffer;
use crate::shared::{SharedArray, SharedMem};
use crate::spec::{DeviceSpec, Occupancy};
use crate::warp::{L2Tracker, WarpCtx, WARP_SIZE};

/// Geometry and resources of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (multiple of the warp size; max 1024).
    pub threads_per_block: usize,
    /// Shared memory requested per block, in bytes.
    pub smem_per_block: usize,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(blocks: usize, threads_per_block: usize, smem_per_block: usize) -> Self {
        Self {
            blocks,
            threads_per_block,
            smem_per_block,
        }
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block.div_ceil(WARP_SIZE).max(1)
    }
}

/// Aggregated result of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Kernel name (for reporting).
    pub name: String,
    /// The launch geometry.
    pub config: LaunchConfig,
    /// Occupancy achieved under the device's limits.
    pub occupancy: Occupancy,
    /// Event counters summed over all blocks.
    pub counters: Counters,
    /// Roofline cost estimate.
    pub cost: CostBreakdown,
}

impl LaunchStats {
    /// Simulated execution time in seconds.
    pub fn sim_seconds(&self) -> f64 {
        self.cost.total_seconds
    }
}

/// Execution context of one thread block.
///
/// Kernels receive a `BlockCtx` per block, allocate shared memory, then
/// run their warps in lockstep phases via [`BlockCtx::run_warps`].
/// Because the paper's kernels only communicate across warps through
/// barriers and global atomics, sequential warp execution inside a block
/// is behaviour-preserving.
#[derive(Debug)]
pub struct BlockCtx<'a> {
    /// Index of this block in the grid.
    pub block_id: usize,
    /// Total blocks in the grid.
    pub grid_blocks: usize,
    warps_per_block: usize,
    spec: &'a DeviceSpec,
    shared: SharedMem,
    counters: Counters,
    l2: &'a mut L2Tracker,
}

impl<'a> BlockCtx<'a> {
    /// Warps in this block.
    pub fn warps(&self) -> usize {
        self.warps_per_block
    }

    /// Threads in this block.
    pub fn threads(&self) -> usize {
        self.warps_per_block * WARP_SIZE
    }

    /// The device spec (for capacity queries inside kernels).
    pub fn spec(&self) -> &DeviceSpec {
        self.spec
    }

    /// Allocates a zero-initialized shared-memory array.
    ///
    /// # Panics
    ///
    /// Panics if the block's shared-memory budget is exceeded (a kernel
    /// bug: strategies must size their launches to fit, §3.3.2).
    pub fn alloc_shared<T: Copy + Default>(&self, len: usize) -> SharedArray<T> {
        self.shared.alloc(len)
    }

    /// Runs `f` once per warp of the block, in lockstep order.
    pub fn run_warps(&mut self, mut f: impl FnMut(&mut WarpCtx)) {
        for w in 0..self.warps_per_block {
            let mut ctx = WarpCtx {
                block_id: self.block_id,
                warp_id: w,
                warps_per_block: self.warps_per_block,
                spec: self.spec,
                counters: &mut self.counters,
                l2: self.l2,
            };
            f(&mut ctx);
        }
    }

    /// Block-wide barrier (`__syncthreads()`); charges one barrier event
    /// and one issue per warp.
    pub fn sync(&mut self) {
        self.counters.barriers += 1;
        self.counters.issues += self.warps_per_block as u64;
    }

    /// Direct counter access for block-level macro-ops (sorting networks
    /// charge their cost analytically rather than replaying every
    /// compare-exchange through a `WarpCtx`).
    pub(crate) fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }
}

/// A simulated GPU.
///
/// # Example
///
/// ```
/// use gpu_sim::{Device, LaunchConfig, lanes_from_fn};
///
/// let dev = Device::volta();
/// let input = dev.buffer_from_slice(&[1.0f32; 64]);
/// let output = dev.buffer::<f32>(64);
/// // Double every element with 1 block of 64 threads (2 warps).
/// let stats = dev.launch("double", LaunchConfig::new(1, 64, 0), |block| {
///     block.run_warps(|w| {
///         let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
///         let vals = w.global_gather(&input, &idx);
///         let doubled = lanes_from_fn(|l| vals[l] * 2.0);
///         w.global_scatter(&output, &idx, &doubled);
///     });
/// });
/// assert_eq!(output.host_get(10), 2.0);
/// assert!(stats.sim_seconds() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
}

impl Device {
    /// Creates a device from a spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec }
    }

    /// A simulated V100 (the paper's benchmark GPU).
    pub fn volta() -> Self {
        Self::new(DeviceSpec::volta_v100())
    }

    /// A simulated A100.
    pub fn ampere() -> Self {
        Self::new(DeviceSpec::ampere_a100())
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Allocates a zeroed device buffer of `len` elements.
    pub fn buffer<T: Copy + Default>(&self, len: usize) -> GlobalBuffer<T> {
        GlobalBuffer::zeroed(len)
    }

    /// Copies host data into a new device buffer.
    pub fn buffer_from_slice<T: Copy + Default>(&self, data: &[T]) -> GlobalBuffer<T> {
        GlobalBuffer::from_slice(data)
    }

    /// Launches a kernel over `config.blocks` blocks, invoking `kernel`
    /// once per block, and returns the aggregated stats with a simulated
    /// time estimate.
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_block` exceeds the device limit or is not a
    /// positive multiple of the warp size, or if `smem_per_block` exceeds
    /// the per-block shared-memory capacity — the simulated equivalents
    /// of a CUDA launch-configuration error.
    pub fn launch(
        &self,
        name: &str,
        config: LaunchConfig,
        mut kernel: impl FnMut(&mut BlockCtx),
    ) -> LaunchStats {
        assert!(
            config.threads_per_block > 0
                && config.threads_per_block <= self.spec.max_threads_per_block
                && config.threads_per_block % WARP_SIZE == 0,
            "invalid threads_per_block {}",
            config.threads_per_block
        );
        assert!(
            config.smem_per_block <= self.spec.shared_mem_per_block,
            "smem_per_block {} exceeds device limit {}",
            config.smem_per_block,
            self.spec.shared_mem_per_block
        );
        let mut total = Counters::new();
        let mut max_block_issues = 0u64;
        let mut l2 = L2Tracker::new();
        for b in 0..config.blocks {
            let mut block = BlockCtx {
                block_id: b,
                grid_blocks: config.blocks,
                warps_per_block: config.warps_per_block(),
                spec: &self.spec,
                shared: SharedMem::new(config.smem_per_block),
                counters: Counters::new(),
                l2: &mut l2,
            };
            kernel(&mut block);
            max_block_issues = max_block_issues.max(block.counters.effective_issues());
            total.merge(&block.counters);
        }
        let occupancy = self
            .spec
            .occupancy(config.threads_per_block, config.smem_per_block);
        let cost =
            estimate_with_blocks(&self.spec, config.blocks, &occupancy, &total, max_block_issues);
        LaunchStats {
            name: name.to_string(),
            config,
            occupancy,
            counters: total,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::lanes_from_fn;

    #[test]
    fn launch_runs_every_block_and_warp() {
        let dev = Device::volta();
        let out = dev.buffer::<f32>(4 * 2 * WARP_SIZE);
        let stats = dev.launch("fill", LaunchConfig::new(4, 64, 0), |block| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
                let vals = lanes_from_fn(|_| 1.0f32);
                w.global_scatter(&out, &idx, &vals);
            });
        });
        assert!(out.to_vec().iter().all(|&v| v == 1.0));
        // 4 blocks × 2 warps × 1 scatter issue.
        assert_eq!(stats.counters.issues, 8);
        assert_eq!(stats.counters.global_transactions, 8);
    }

    #[test]
    fn shared_memory_isolated_per_block() {
        let dev = Device::volta();
        let out = dev.buffer::<f32>(2);
        dev.launch("smem", LaunchConfig::new(2, 32, 1024), |block| {
            let smem = block.alloc_shared::<f32>(1);
            let bid = block.block_id;
            block.run_warps(|w| {
                // Each block writes its id + existing value (should start 0).
                let idx = lanes_from_fn(|l| if l == 0 { Some(0usize) } else { None });
                let prev = w.smem_gather(&smem, &idx);
                let vals = lanes_from_fn(|_| prev[0] + bid as f32 + 1.0);
                w.smem_scatter(&smem, &idx, &vals);
                let oidx = lanes_from_fn(|l| if l == 0 { Some(bid) } else { None });
                let ovals = lanes_from_fn(|_| vals[0]);
                w.global_scatter(&out, &oidx, &ovals);
            });
        });
        // Block 0 wrote 1.0, block 1 wrote 2.0 (no smem leakage).
        assert_eq!(out.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "invalid threads_per_block")]
    fn rejects_non_warp_multiple_blocks() {
        let dev = Device::volta();
        dev.launch("bad", LaunchConfig::new(1, 33, 0), |_| {});
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn rejects_oversized_smem() {
        let dev = Device::volta();
        dev.launch("bad", LaunchConfig::new(1, 32, 10 * 1024 * 1024), |_| {});
    }

    #[test]
    fn barrier_charges_issues() {
        let dev = Device::volta();
        let stats = dev.launch("sync", LaunchConfig::new(3, 128, 0), |block| {
            block.sync();
        });
        assert_eq!(stats.counters.barriers, 3);
        assert_eq!(stats.counters.issues, 12);
    }

    #[test]
    fn stats_report_occupancy_and_cost() {
        let dev = Device::volta();
        let stats = dev.launch("occ", LaunchConfig::new(160, 1024, 48 * 1024), |block| {
            block.run_warps(|w| w.issue(100));
        });
        assert_eq!(stats.occupancy.concurrent_warps_per_sm, 64);
        assert!(stats.sim_seconds() > 0.0);
        assert_eq!(stats.counters.issues, 160 * 32 * 100);
    }
}
