//! A functional SIMT GPU simulator with a first-order cost model.
//!
//! This crate is the reproduction's substitute for the CUDA hardware the
//! paper evaluates on (DESIGN.md "Substitutions"). Kernels are written
//! warp-synchronously — every operation acts on 32 lanes under an
//! explicit activity mask — and every operation charges hardware event
//! [`Counters`]: instruction issues, divergence serialization, coalesced
//! global-memory transactions, shared-memory bank conflicts, and atomic
//! contention. A roofline [`cost`] model plus the [`spec::DeviceSpec`]
//! occupancy calculation converts counters into simulated time, making
//! the paper's §3 design arguments (coalescing, divergence,
//! shared-memory-bounded occupancy) measurable claims.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{Device, LaunchConfig, lanes_from_fn};
//!
//! let dev = Device::volta();
//! let xs = dev.buffer_from_slice(&[2.0f32; 1024]);
//! let out = dev.buffer::<f32>(1024);
//! let stats = dev.launch("scale", LaunchConfig::new(8, 128, 0), |block| {
//!     block.run_warps(|w| {
//!         let idx = lanes_from_fn(|l| Some(w.global_thread_id(l)));
//!         let v = w.global_gather(&xs, &idx);
//!         w.global_scatter(&out, &idx, &lanes_from_fn(|l| v[l] * 3.0));
//!     });
//! });
//! assert_eq!(out.host_get(0), 6.0);
//! // Unit-stride f32 accesses coalesce perfectly: 1 transaction per warp
//! // per access.
//! assert_eq!(stats.counters.coalescing_overhead(), 1.0);
//! ```

#![deny(missing_docs)]
// `for l in 0..WARP_SIZE` is the crate-wide SIMT idiom: lane loops
// usually walk several `Lanes` arrays in lockstep, and the few that
// happen to index only one read better matching the rest.
#![allow(clippy::needless_range_loop)]

pub mod collections;
pub mod cost;
pub mod counters;
pub mod device;
pub mod fault;
pub mod global;
pub mod murmur;
pub mod prims;
pub mod prof;
pub mod sanitizer;
pub mod shared;
pub mod spec;
pub mod warp;

pub use collections::{SmemBloomFilter, SmemHashTable};
pub use cost::CostBreakdown;
pub use counters::Counters;
pub use device::{BlockCtx, Device, LaunchConfig, LaunchStats};
pub use fault::FaultPlan;
pub use global::GlobalBuffer;
pub use prims::{bitonic_sort_by_key, warp_binary_search};
pub use prof::{
    chrome_trace, chrome_trace_envelope, json_escape, LaunchProfile, RangeStats, TraceSpan,
};
pub use sanitizer::{CheckerKind, MemSpace, SanitizerMode, SanitizerReport, SimError};
pub use shared::{SharedArray, SharedMem};
pub use spec::{Arch, DeviceSpec, Occupancy};
pub use warp::{lanes_from_fn, Lanes, WarpCtx, WARP_SIZE};
