//! Warp-synchronous execution contexts.
//!
//! Kernels in this simulator are written from the perspective of a single
//! warp: every operation acts on all 32 lanes at once under an explicit
//! activity mask, exactly the SIMD model §3.1 describes. Each operation
//! charges the [`Counters`] with the events the real hardware would see —
//! one issue slot per warp-instruction, one global transaction per
//! 128-byte segment touched, one replay per shared-memory bank conflict,
//! one serialization step per same-address atomic.

use crate::counters::Counters;
use crate::fault::{LaunchFaults, WatchdogAbort};
use crate::global::GlobalBuffer;
use crate::prof::BlockProfiler;
use crate::sanitizer::{BlockSanitizer, CheckerKind, MemSpace, SimError};
use crate::shared::SharedArray;
use crate::spec::DeviceSpec;
use std::cell::RefCell;
use std::collections::HashSet;

/// Per-block record of distinct `(buffer, segment)` touches, standing
/// in for the block's view of the L2: the first touch of a segment is a
/// compulsory DRAM transaction, later touches are re-reads the cost
/// model may discount. Tracking per block (rather than launch-wide)
/// keeps the counter independent of block execution order, which is
/// what lets a launch run its blocks on concurrent host threads and
/// still merge byte-identical counters.
pub type L2Tracker = HashSet<(u64, usize)>;

/// Per-block log of global atomics deferred by a parallel launch.
///
/// Blocks of one launch may interleave arbitrarily on host threads, and
/// floating-point `⊕` is not associative, so a parallel launch must not
/// apply cross-block atomics as they happen. Instead each block logs its
/// read-modify-writes here (as `'static` closures over the buffer's
/// shared storage handle) and [`crate::Device::try_launch`] replays the
/// logs in block order once every block has finished — reproducing the
/// serial schedule bit for bit. Kernels never read an atomic-target
/// buffer mid-launch (results are only combined, then copied out after
/// the launch), so deferral is invisible to kernel semantics.
#[derive(Default)]
pub(crate) struct AtomicDefer {
    log: RefCell<Vec<Box<dyn FnOnce() + Send>>>,
}

impl AtomicDefer {
    /// Appends one deferred replay step.
    pub(crate) fn push(&self, f: Box<dyn FnOnce() + Send>) {
        self.log.borrow_mut().push(f);
    }

    /// Drains the log in insertion order.
    pub(crate) fn take(&self) -> Vec<Box<dyn FnOnce() + Send>> {
        self.log.take()
    }
}

impl std::fmt::Debug for AtomicDefer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicDefer({} deferred)", self.log.borrow().len())
    }
}

/// Number of lanes in a warp on every simulated architecture.
pub const WARP_SIZE: usize = 32;

/// A per-lane value vector: one slot per lane of the warp.
pub type Lanes<T> = [T; WARP_SIZE];

/// Builds a `Lanes` array from a function of the lane index.
pub fn lanes_from_fn<T: Copy + Default>(mut f: impl FnMut(usize) -> T) -> Lanes<T> {
    let mut out = [T::default(); WARP_SIZE];
    for (l, slot) in out.iter_mut().enumerate() {
        *slot = f(l);
    }
    out
}

/// Execution context of one warp within one block.
#[derive(Debug)]
pub struct WarpCtx<'a> {
    /// Index of the owning block within the grid.
    pub block_id: usize,
    /// Index of this warp within its block.
    pub warp_id: usize,
    /// Warps per block in this launch.
    pub warps_per_block: usize,
    pub(crate) spec: &'a DeviceSpec,
    pub(crate) counters: &'a mut Counters,
    pub(crate) l2: &'a mut L2Tracker,
    pub(crate) san: &'a BlockSanitizer,
    pub(crate) prof: Option<&'a BlockProfiler>,
    pub(crate) faults: &'a LaunchFaults,
    pub(crate) watchdog: Option<u64>,
    /// `Some` when the launch executes blocks on concurrent host
    /// threads: global atomics are logged here instead of applied
    /// eagerly (see [`AtomicDefer`]). `None` on the serial path and in
    /// hand-built test contexts, which keep the eager behaviour.
    pub(crate) deferred: Option<&'a AtomicDefer>,
}

impl<'a> WarpCtx<'a> {
    /// Global warp index across the grid.
    pub fn global_warp_id(&self) -> usize {
        self.block_id * self.warps_per_block + self.warp_id
    }

    /// Runs `f` inside a named NVTX-style profiler range: the counter
    /// delta across `f` is attributed to `name` (nested ranges aggregate
    /// upward; see [`crate::prof`]). With the profiler off this is a
    /// pure passthrough — no counter is read or written.
    pub fn range<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        match self.prof {
            Some(p) => {
                p.open(name, self.counters);
                let r = f(self);
                p.close(self.counters);
                r
            }
            None => f(self),
        }
    }

    /// Global thread index of lane `l`.
    pub fn global_thread_id(&self, l: usize) -> usize {
        self.global_warp_id() * WARP_SIZE + l
    }

    /// Watchdog check on the warp's charge paths: a block that exceeds
    /// its effective-issue budget unwinds with the sentinel
    /// [`WatchdogAbort`], which [`crate::Device::try_launch`] converts
    /// into [`SimError::WatchdogTimeout`]. Unarmed launches pay one
    /// `None` branch.
    #[inline]
    fn watchdog_tick(&self) {
        if let Some(budget) = self.watchdog {
            if self.counters.effective_issues() > budget {
                std::panic::panic_any(WatchdogAbort);
            }
        }
    }

    /// Records a launch-level fault (first one wins) that
    /// [`crate::Device::try_launch`] surfaces as `Err` once the current
    /// block finishes — the record-and-limp discipline hardened kernel
    /// primitives use instead of panicking mid-launch.
    pub fn record_fault(&mut self, e: SimError) {
        self.faults.record(e);
    }

    /// Records a [`SimError::CapacityOverflow`] for this launch, filling
    /// in the kernel name.
    pub fn record_capacity_overflow(&mut self, resource: &str, detail: impl Into<String>) {
        let e = SimError::CapacityOverflow {
            kernel: self.faults.kernel().to_string(),
            resource: resource.to_string(),
            detail: detail.into(),
        };
        self.faults.record(e);
    }

    /// Records a [`SimError::TransientFault`] for this launch (a
    /// corrupted-lane event), filling in the kernel name.
    pub fn record_corrupted_lane(&mut self, detail: impl Into<String>) {
        let e = SimError::TransientFault {
            kernel: self.faults.kernel().to_string(),
            detail: detail.into(),
        };
        self.faults.record(e);
    }

    /// Whether a fault has already been recorded for this launch —
    /// kernels may use it to skip work they know will be discarded.
    pub fn fault_pending(&self) -> bool {
        self.faults.pending()
    }

    /// Consumes the injected hash-table overflow scheduled for this
    /// launch, if any (see
    /// [`crate::fault::FaultPlan::with_hash_overflows`]).
    pub(crate) fn take_injected_hash_overflow(&self) -> bool {
        self.faults.take_injected_hash_overflow()
    }

    /// Fault-injection hook on the global access paths: fires the
    /// scheduled single-bit upset when `buf` is the plan's labeled
    /// target.
    #[inline]
    fn fault_check_global<T: Copy + Default>(&self, buf: &GlobalBuffer<T>) {
        if self.faults.wants_flip() {
            buf.with_label_ref(|label| {
                self.faults
                    .maybe_flip(label, buf.len(), 8 * std::mem::size_of::<T>() as u32)
            });
        }
    }

    /// Charges `n` warp-instruction issues (ALU / control work with no
    /// memory traffic).
    #[inline]
    pub fn issue(&mut self, n: u64) {
        self.counters.issues += n;
        self.watchdog_tick();
    }

    /// Records a divergent branch: a warp whose active lanes split into
    /// `groups` distinct paths serializes and pays `groups − 1` extra
    /// issue slots (§3.1 "thread divergence").
    #[inline]
    pub fn diverge(&mut self, groups: usize) {
        self.counters.issues += 1;
        self.counters.divergence_extra += groups.saturating_sub(1) as u64;
    }

    /// Evaluates a per-lane predicate as a branch and records the
    /// divergence it causes (uniform warps pay one issue, mixed warps
    /// two serialized paths).
    pub fn branch(&mut self, active: &Lanes<bool>) -> usize {
        let taken = active.iter().filter(|&&b| b).count();
        let groups = if taken == 0 || taken == WARP_SIZE {
            1
        } else {
            2
        };
        self.diverge(groups);
        groups
    }

    /// Memcheck: with the sanitizer enabled, out-of-bounds lanes are
    /// reported and squashed (excluded from cost and data movement)
    /// instead of panicking; with it off the legacy `Vec` index panic is
    /// preserved downstream.
    fn memcheck(
        &self,
        len: usize,
        idx: &Lanes<Option<usize>>,
        space: MemSpace,
        what: &str,
    ) -> Lanes<Option<usize>> {
        if !self.san.enabled() {
            return *idx;
        }
        let mut out = *idx;
        for (l, slot) in out.iter_mut().enumerate() {
            if let Some(i) = *slot {
                if i >= len {
                    self.san.report(
                        CheckerKind::Memcheck,
                        Some(self.warp_id),
                        Some(l),
                        Some(space),
                        Some(i),
                        format!("{what}: index {i} out of bounds (len {len})"),
                    );
                    *slot = None;
                }
            }
        }
        out
    }

    /// Initcheck for global reads: flags lanes reading elements of an
    /// [`GlobalBuffer::uninit`] buffer that were never written.
    fn global_initcheck<T: Copy + Default>(
        &self,
        buf: &GlobalBuffer<T>,
        idx: &Lanes<Option<usize>>,
    ) {
        if !self.san.enabled() {
            return;
        }
        for (l, slot) in idx.iter().enumerate() {
            if let Some(i) = *slot {
                if !buf.is_init(i) {
                    self.san.report(
                        CheckerKind::Initcheck,
                        Some(self.warp_id),
                        Some(l),
                        Some(MemSpace::Global { buffer: buf.id() }),
                        Some(i),
                        "read of uninitialized global memory".to_string(),
                    );
                }
            }
        }
    }

    /// Gathers one element per active lane from global memory.
    ///
    /// Lanes with `None` are inactive. Cost: one issue plus one
    /// transaction per distinct `mem_transaction_bytes` segment touched —
    /// fully coalesced unit-stride access by 32 lanes of `f32` costs one
    /// 128-byte transaction, a random gather costs up to 32.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for the buffer and the
    /// sanitizer is off; with the sanitizer on the lane is reported and
    /// squashed.
    pub fn global_gather<T: Copy + Default>(
        &mut self,
        buf: &GlobalBuffer<T>,
        idx: &Lanes<Option<usize>>,
    ) -> Lanes<T> {
        self.fault_check_global(buf);
        let idx = self.memcheck(
            buf.len(),
            idx,
            MemSpace::Global { buffer: buf.id() },
            "global gather",
        );
        self.global_initcheck(buf, &idx);
        self.charge_global::<T>(buf.id(), &idx);
        let mut out = [T::default(); WARP_SIZE];
        for (l, slot) in out.iter_mut().enumerate() {
            if let Some(i) = idx[l] {
                *slot = buf.read(i);
            }
        }
        out
    }

    /// Scatters one element per active lane to global memory. Same cost
    /// model as [`Self::global_gather`]. Last writer wins on duplicate
    /// indices (as on hardware); use [`Self::global_atomic`] for combines.
    pub fn global_scatter<T: Copy + Default>(
        &mut self,
        buf: &GlobalBuffer<T>,
        idx: &Lanes<Option<usize>>,
        vals: &Lanes<T>,
    ) {
        self.fault_check_global(buf);
        let idx = self.memcheck(
            buf.len(),
            idx,
            MemSpace::Global { buffer: buf.id() },
            "global scatter",
        );
        self.charge_global::<T>(buf.id(), &idx);
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                buf.write(i, vals[l]);
            }
        }
    }

    /// Atomically reduces each active lane's value into global memory
    /// with `op`. Lanes of the same warp hitting the same address
    /// serialize: `m` lanes on one address pay `m − 1` extra slots,
    /// modeling atomic contention.
    ///
    /// `T` and `op` are `Send + 'static` so that a parallel launch can
    /// defer the data mutation into a replay log that outlives the
    /// block (counters are always charged eagerly either way).
    pub fn global_atomic<T: Copy + Default + Send + Sync + 'static>(
        &mut self,
        buf: &GlobalBuffer<T>,
        idx: &Lanes<Option<usize>>,
        vals: &Lanes<T>,
        op: impl Fn(T, T) -> T + Send + 'static,
    ) {
        self.fault_check_global(buf);
        let idx = self.memcheck(
            buf.len(),
            idx,
            MemSpace::Global { buffer: buf.id() },
            "global atomic",
        );
        self.charge_global::<T>(buf.id(), &idx);
        let mut seen: Vec<(usize, u64)> = Vec::new();
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                self.counters.atomics += 1;
                match seen.iter_mut().find(|(a, _)| *a == i) {
                    Some((_, m)) => *m += 1,
                    None => seen.push((i, 1)),
                }
            }
        }
        for (_, m) in seen {
            self.counters.atomic_conflict_extra += m - 1;
        }
        match self.deferred {
            None => {
                // Serial path (and hand-built contexts): apply in lane
                // order, exactly the hardware-serialized schedule.
                for l in 0..WARP_SIZE {
                    if let Some(i) = idx[l] {
                        buf.rmw(i, |cur| op(cur, vals[l]));
                    }
                }
            }
            Some(log) => {
                // Parallel path: log the whole warp-op; the launch
                // replays logs in block order after the grid finishes.
                let storage = buf.shared_storage();
                let vals = *vals;
                log.push(Box::new(move || {
                    for l in 0..WARP_SIZE {
                        if let Some(i) = idx[l] {
                            crate::global::replay_rmw(&storage, i, |cur| op(cur, vals[l]));
                        }
                    }
                }));
            }
        }
    }

    /// Reads one element per active lane from shared memory, charging
    /// bank-conflict replays: the access replays once per extra distinct
    /// word mapping to the same bank (§3.1). Elements wider than a
    /// 4-byte bank (e.g. `f64`) touch every bank their words span.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds and the sanitizer is off.
    pub fn smem_gather<T: Copy + Default>(
        &mut self,
        arr: &SharedArray<T>,
        idx: &Lanes<Option<usize>>,
    ) -> Lanes<T> {
        let idx = self.memcheck(
            arr.len(),
            idx,
            MemSpace::Shared {
                base_byte: arr.base_byte(),
            },
            "shared gather",
        );
        self.charge_smem(arr, &idx);
        let mut out = [T::default(); WARP_SIZE];
        for (l, slot) in out.iter_mut().enumerate() {
            if let Some(i) = idx[l] {
                if let Some(sh) = arr.shadow() {
                    sh.warp_read(i, self.warp_id, l, false);
                }
                *slot = arr.raw_get(i);
            }
        }
        out
    }

    /// Writes one element per active lane to shared memory (same
    /// bank-conflict model as [`Self::smem_gather`]).
    pub fn smem_scatter<T: Copy + Default>(
        &mut self,
        arr: &SharedArray<T>,
        idx: &Lanes<Option<usize>>,
        vals: &Lanes<T>,
    ) {
        let idx = self.memcheck(
            arr.len(),
            idx,
            MemSpace::Shared {
                base_byte: arr.base_byte(),
            },
            "shared scatter",
        );
        self.charge_smem(arr, &idx);
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                if let Some(sh) = arr.shadow() {
                    sh.warp_write(i, self.warp_id, l, false);
                }
                arr.raw_set(i, vals[l]);
            }
        }
    }

    /// Atomically read-modify-writes one shared-memory element per active
    /// lane with `op`, returning each lane's *previous* value — the
    /// `atomicCAS`/`atomicOr` family the block-cooperative collections
    /// use. Lanes of the same warp hitting the same address serialize
    /// like [`Self::global_atomic`]; the racecheck shadow treats these
    /// accesses as atomic, so concurrent atomics from different warps do
    /// not race each other.
    pub fn smem_atomic<T: Copy + Default>(
        &mut self,
        arr: &SharedArray<T>,
        idx: &Lanes<Option<usize>>,
        vals: &Lanes<T>,
        op: impl Fn(T, T) -> T,
    ) -> Lanes<T> {
        let idx = self.memcheck(
            arr.len(),
            idx,
            MemSpace::Shared {
                base_byte: arr.base_byte(),
            },
            "shared atomic",
        );
        self.charge_smem(arr, &idx);
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let mut out = [T::default(); WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                self.counters.atomics += 1;
                match seen.iter_mut().find(|(a, _)| *a == i) {
                    Some((_, m)) => *m += 1,
                    None => seen.push((i, 1)),
                }
                if let Some(sh) = arr.shadow() {
                    sh.warp_atomic(i, self.warp_id, l);
                }
                out[l] = arr.rmw(i, |cur| op(cur, vals[l]));
            }
        }
        for (_, m) in seen {
            self.counters.atomic_conflict_extra += m - 1;
        }
        out
    }

    /// Announces this warp's arrival at the block's next
    /// `__syncthreads()` under the given lane mask. Synccheck flags a
    /// partial mask immediately (a barrier in divergent code), and
    /// [`crate::BlockCtx::sync`] flags warps whose arrival counts
    /// disagree. Costs one issue.
    pub fn barrier(&mut self, active: &Lanes<bool>) {
        self.issue(1);
        let lanes = active.iter().filter(|&&a| a).count();
        self.san
            .barrier_arrival(self.warp_id, lanes, lanes == WARP_SIZE);
    }

    /// Warp-wide reduction of the active lanes' values with `op`,
    /// returning the single reduced value (identity `id` when no lane is
    /// active). Costs `log2(32) = 5` shuffle issues, the register-level
    /// collective §3.1 recommends.
    pub fn warp_reduce<T: Copy>(
        &mut self,
        vals: &Lanes<T>,
        active: &Lanes<bool>,
        id: T,
        op: impl Fn(T, T) -> T,
    ) -> T {
        self.issue(5);
        let mut acc = id;
        for l in 0..WARP_SIZE {
            if active[l] {
                acc = op(acc, vals[l]);
            }
        }
        acc
    }

    /// Warp-level **segmented reduction by key** (§3.3: "we use a
    /// segmented reduction by key within each warp"). Keys must be
    /// non-decreasing across active lanes (the COO row array is sorted).
    /// Returns one `(key, reduced value)` pair per distinct key — the
    /// values the per-segment leader lanes would hold. Costs
    /// `2·log2(32)` issues (scan + leader election).
    pub fn warp_segmented_reduce<T: Copy>(
        &mut self,
        keys: &Lanes<u32>,
        vals: &Lanes<T>,
        active: &Lanes<bool>,
        id: T,
        op: impl Fn(T, T) -> T,
    ) -> Vec<(u32, T)> {
        self.issue(10);
        let mut out: Vec<(u32, T)> = Vec::new();
        for l in 0..WARP_SIZE {
            if !active[l] {
                continue;
            }
            match out.last_mut() {
                Some((k, acc)) if *k == keys[l] => *acc = op(*acc, vals[l]),
                _ => out.push((keys[l], op(id, vals[l]))),
            }
        }
        out
    }

    /// Warp-wide **exclusive prefix sum** over the active lanes' values:
    /// returns each lane's sum of preceding active values plus the warp
    /// total — the primitive behind stream compaction (each lane learns
    /// its output slot). Costs `log2(32) = 5` shuffle issues.
    pub fn warp_exclusive_scan(
        &mut self,
        vals: &Lanes<u32>,
        active: &Lanes<bool>,
    ) -> (Lanes<u32>, u32) {
        self.issue(5);
        let mut out = [0u32; WARP_SIZE];
        let mut acc = 0u32;
        for l in 0..WARP_SIZE {
            if active[l] {
                out[l] = acc;
                acc += vals[l];
            }
        }
        (out, acc)
    }

    fn charge_global<T>(&mut self, buf_id: u64, idx: &Lanes<Option<usize>>) {
        self.counters.issues += 1;
        self.watchdog_tick();
        let seg = self.spec.mem_transaction_bytes;
        let esz = std::mem::size_of::<T>();
        let mut segments: Vec<usize> = idx.iter().flatten().map(|&i| i * esz / seg).collect();
        let requested = segments.len() as u64 * esz as u64;
        segments.sort_unstable();
        segments.dedup();
        for &sg in &segments {
            if self.l2.insert((buf_id, sg)) {
                self.counters.global_bytes_unique += seg as u64;
            }
        }
        self.counters.global_transactions += segments.len() as u64;
        self.counters.global_bytes += (segments.len() * seg) as u64;
        self.counters.global_bytes_requested += requested;
    }

    fn charge_smem<T>(&mut self, arr: &SharedArray<T>, idx: &Lanes<Option<usize>>)
    where
        T: Copy,
    {
        self.counters.issues += 1;
        self.counters.smem_accesses += 1;
        self.watchdog_tick();
        let banks = self.spec.smem_banks;
        // Distinct 4-byte *word* addresses per bank; broadcast of the same
        // word is conflict-free on real hardware. Elements wider than a
        // bank (f64/u64) span several consecutive words, so a warp-wide
        // unit-stride f64 access puts two distinct words in every bank —
        // one replay, the doubled traffic real hardware shows for
        // double-precision shared-memory tiles.
        let mut per_bank: Vec<Vec<usize>> = vec![Vec::new(); banks];
        for i in idx.iter().flatten() {
            let (first_word, words) = arr.word_span(*i);
            for w in 0..words {
                let word = first_word + w;
                let b = word % banks;
                if !per_bank[b].contains(&word) {
                    per_bank[b].push(word);
                }
            }
        }
        let replay = per_bank.iter().map(Vec::len).max().unwrap_or(0);
        self.counters.bank_conflict_extra += replay.saturating_sub(1) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedMem;
    use crate::spec::DeviceSpec;

    fn ctx_counters() -> (DeviceSpec, Counters) {
        (DeviceSpec::volta_v100(), Counters::new())
    }

    fn with_ctx<R>(f: impl FnOnce(&mut WarpCtx) -> R) -> (R, Counters) {
        let (spec, mut counters) = ctx_counters();
        let mut l2 = L2Tracker::new();
        let san = BlockSanitizer::disabled();
        let faults = LaunchFaults::disabled();
        let r = {
            let mut ctx = WarpCtx {
                block_id: 0,
                warp_id: 0,
                warps_per_block: 1,
                spec: &spec,
                counters: &mut counters,
                l2: &mut l2,
                san: &san,
                prof: None,
                faults: &faults,
                watchdog: None,
                deferred: None,
            };
            f(&mut ctx)
        };
        (r, counters)
    }

    #[test]
    fn unit_stride_f32_gather_is_one_transaction() {
        let buf = GlobalBuffer::from_vec((0..64).map(|i| i as f32).collect());
        let idx = lanes_from_fn(Some);
        let (vals, c) = with_ctx(|ctx| ctx.global_gather(&buf, &idx));
        assert_eq!(vals[5], 5.0);
        assert_eq!(c.global_transactions, 1);
        assert_eq!(c.global_bytes, 128);
        assert_eq!(c.global_bytes_requested, 128);
        assert_eq!(c.coalescing_overhead(), 1.0);
    }

    #[test]
    fn strided_gather_pays_many_transactions() {
        let buf = GlobalBuffer::from_vec(vec![0.0f32; 32 * 64]);
        // Stride of 64 elements = 256 bytes: every lane hits its own
        // segment.
        let idx = lanes_from_fn(|l| Some(l * 64));
        let (_, c) = with_ctx(|ctx| ctx.global_gather(&buf, &idx));
        assert_eq!(c.global_transactions, 32);
        assert!(c.coalescing_overhead() > 30.0);
    }

    #[test]
    fn repeated_reads_grow_bytes_but_not_unique_bytes() {
        // L2Tracker semantics: the first touch of a (buffer, segment)
        // pair is a compulsory miss counted in `global_bytes_unique`;
        // every later touch within the same launch still moves
        // `global_bytes` but adds nothing unique.
        let buf = GlobalBuffer::from_vec((0..64).map(|i| i as f32).collect());
        let idx = lanes_from_fn(Some);
        let (_, c) = with_ctx(|ctx| {
            for _ in 0..4 {
                let _ = ctx.global_gather(&buf, &idx);
            }
        });
        assert_eq!(c.global_transactions, 4);
        assert_eq!(c.global_bytes, 4 * 128);
        assert_eq!(c.global_bytes_unique, 128);
        assert_eq!(c.reread_ratio(), 4.0);
    }

    #[test]
    fn distinct_buffers_never_share_unique_segments() {
        // Two buffers covering the same element range still occupy
        // distinct L2 lines: uniqueness is keyed on (buffer id, segment).
        let a = GlobalBuffer::from_vec(vec![0.0f32; 32]);
        let b = GlobalBuffer::from_vec(vec![0.0f32; 32]);
        let idx = lanes_from_fn(Some);
        let (_, c) = with_ctx(|ctx| {
            let _ = ctx.global_gather(&a, &idx);
            let _ = ctx.global_gather(&b, &idx);
        });
        assert_eq!(c.global_bytes_unique, 256);
    }

    #[test]
    fn inactive_lanes_are_free() {
        let buf = GlobalBuffer::from_vec(vec![1.0f32; 128]);
        let mut idx = [None; WARP_SIZE];
        idx[0] = Some(0);
        let (vals, c) = with_ctx(|ctx| ctx.global_gather(&buf, &idx));
        assert_eq!(vals[0], 1.0);
        assert_eq!(vals[1], 0.0);
        assert_eq!(c.global_transactions, 1);
    }

    #[test]
    fn scatter_writes_values() {
        let buf = GlobalBuffer::<f32>::zeroed(WARP_SIZE);
        let idx = lanes_from_fn(Some);
        let vals = lanes_from_fn(|l| l as f32);
        let ((), _) = with_ctx(|ctx| ctx.global_scatter(&buf, &idx, &vals));
        assert_eq!(buf.host_get(7), 7.0);
    }

    #[test]
    fn atomic_same_address_serializes() {
        let buf = GlobalBuffer::<f32>::zeroed(1);
        let idx = lanes_from_fn(|_| Some(0usize));
        let vals = lanes_from_fn(|_| 1.0f32);
        let ((), c) = with_ctx(|ctx| ctx.global_atomic(&buf, &idx, &vals, |a, b| a + b));
        assert_eq!(buf.host_get(0), 32.0);
        assert_eq!(c.atomics, 32);
        assert_eq!(c.atomic_conflict_extra, 31);
    }

    #[test]
    fn atomic_distinct_addresses_do_not_serialize() {
        let buf = GlobalBuffer::<f32>::zeroed(WARP_SIZE);
        let idx = lanes_from_fn(Some);
        let vals = lanes_from_fn(|_| 2.0f32);
        let ((), c) = with_ctx(|ctx| ctx.global_atomic(&buf, &idx, &vals, |a, b| a + b));
        assert_eq!(c.atomic_conflict_extra, 0);
        assert_eq!(buf.host_get(31), 2.0);
    }

    #[test]
    fn smem_conflict_free_and_conflicting_patterns() {
        let pool = SharedMem::new(16 * 1024);
        let arr = pool.alloc::<f32>(1024);
        // Unit stride: each lane its own bank → no conflicts.
        let idx = lanes_from_fn(Some);
        let (_, c) = with_ctx(|ctx| ctx.smem_gather(&arr, &idx));
        assert_eq!(c.bank_conflict_extra, 0);
        // Stride 32: every lane maps to bank 0 → 31 replays.
        let idx2 = lanes_from_fn(|l| Some(l * 32));
        let (_, c2) = with_ctx(|ctx| ctx.smem_gather(&arr, &idx2));
        assert_eq!(c2.bank_conflict_extra, 31);
    }

    #[test]
    fn f64_unit_stride_pays_one_replay() {
        // 32 lanes × 8-byte elements = 64 words over 32 banks: each bank
        // holds two distinct words → exactly one replay.
        let pool = SharedMem::new(16 * 1024);
        let arr = pool.alloc::<f64>(64);
        let idx = lanes_from_fn(Some);
        let (_, c) = with_ctx(|ctx| ctx.smem_gather(&arr, &idx));
        assert_eq!(c.bank_conflict_extra, 1);
        // Broadcast of one f64 touches two banks but only one word each:
        // conflict-free.
        let idx_bc = lanes_from_fn(|_| Some(3usize));
        let (_, c2) = with_ctx(|ctx| ctx.smem_gather(&arr, &idx_bc));
        assert_eq!(c2.bank_conflict_extra, 0);
    }

    #[test]
    fn smem_atomic_returns_old_values_and_serializes() {
        let pool = SharedMem::new(1024);
        let arr = pool.alloc::<u32>(4);
        arr.fill(0);
        let idx = lanes_from_fn(|_| Some(0usize));
        let vals = lanes_from_fn(|l| 1u32 << (l % 8));
        let (old, c) = with_ctx(|ctx| ctx.smem_atomic(&arr, &idx, &vals, |a, b| a | b));
        // Lane 0 saw the initial value; the final word has all merged bits.
        assert_eq!(old[0], 0);
        assert_eq!(arr.read(0), 0xff);
        assert_eq!(c.atomics, 32);
        assert_eq!(c.atomic_conflict_extra, 31);
        // Distinct addresses don't serialize.
        let idx2 = lanes_from_fn(|l| Some(l % 4));
        let (_, c2) = with_ctx(|ctx| ctx.smem_atomic(&arr, &idx2, &vals, |a, b| a | b));
        assert_eq!(c2.atomic_conflict_extra, 28);
    }

    #[test]
    fn smem_broadcast_is_conflict_free() {
        let pool = SharedMem::new(4096);
        let arr = pool.alloc::<f32>(64);
        arr.fill(3.0);
        let idx = lanes_from_fn(|_| Some(5usize));
        let (vals, c) = with_ctx(|ctx| ctx.smem_gather(&arr, &idx));
        assert_eq!(vals[31], 3.0);
        assert_eq!(c.bank_conflict_extra, 0);
    }

    #[test]
    fn branch_divergence_accounting() {
        let mixed = lanes_from_fn(|l| l < 10);
        let uniform = [true; WARP_SIZE];
        let ((), c) = with_ctx(|ctx| {
            ctx.branch(&mixed);
            ctx.branch(&uniform);
        });
        assert_eq!(c.divergence_extra, 1);
        assert_eq!(c.issues, 2);
    }

    #[test]
    fn warp_reduce_sums_active_lanes() {
        let vals = lanes_from_fn(|l| l as f64);
        let active = lanes_from_fn(|l| l % 2 == 0);
        let (sum, c) = with_ctx(|ctx| ctx.warp_reduce(&vals, &active, 0.0, |a, b| a + b));
        assert_eq!(sum, (0..32).filter(|l| l % 2 == 0).sum::<usize>() as f64);
        assert_eq!(c.issues, 5);
    }

    #[test]
    fn exclusive_scan_computes_offsets_and_total() {
        let vals = lanes_from_fn(|l| (l % 3 == 0) as u32 + 1); // 2,1,1,2,...
        let active = lanes_from_fn(|l| l != 5);
        let ((offsets, total), c) = with_ctx(|ctx| ctx.warp_exclusive_scan(&vals, &active));
        let mut acc = 0;
        for l in 0..WARP_SIZE {
            if active[l] {
                assert_eq!(offsets[l], acc, "lane {l}");
                acc += vals[l];
            } else {
                assert_eq!(offsets[l], 0);
            }
        }
        assert_eq!(total, acc);
        assert_eq!(c.issues, 5);
    }

    #[test]
    fn segmented_reduce_groups_sorted_keys() {
        let keys = lanes_from_fn(|l| (l / 10) as u32);
        let vals = lanes_from_fn(|_| 1.0f32);
        let active = [true; WARP_SIZE];
        let (segs, c) =
            with_ctx(|ctx| ctx.warp_segmented_reduce(&keys, &vals, &active, 0.0, |a, b| a + b));
        assert_eq!(segs, vec![(0, 10.0), (1, 10.0), (2, 10.0), (3, 2.0)]);
        assert_eq!(c.issues, 10);
    }

    #[test]
    fn segmented_reduce_respects_mask() {
        let keys = lanes_from_fn(|_| 7u32);
        let vals = lanes_from_fn(|l| l as f32);
        let mut active = [false; WARP_SIZE];
        active[3] = true;
        active[9] = true;
        let (segs, _) =
            with_ctx(|ctx| ctx.warp_segmented_reduce(&keys, &vals, &active, 0.0, |a, b| a + b));
        assert_eq!(segs, vec![(7, 12.0)]);
    }
}
