//! Opt-in launch-time analysis: a `compute-sanitizer` analog.
//!
//! Real CUDA development leans on `compute-sanitizer` to catch the bug
//! classes the SIMT model invites — out-of-bounds accesses, shared-memory
//! races between warps, divergent barriers, and reads of uninitialized
//! memory. This module gives the simulator the same four checkers:
//!
//! * **memcheck** — per-lane bounds checks on every global and shared
//!   access; faults become structured [`SanitizerReport`]s (kernel,
//!   block, warp, lane, buffer, offset) instead of bare `Vec` index
//!   panics, and the faulting lane is squashed.
//! * **racecheck** — a per-element shared-memory shadow tracks the last
//!   writer and reader (warp + barrier epoch); write-write, read-write,
//!   and write-read pairs from different warps inside one epoch are
//!   flagged unless both sides are atomic.
//! * **synccheck** — barriers under a divergent lane mask, and warps
//!   arriving at `__syncthreads()` a different number of times.
//! * **initcheck** — reads of shared or global words that were never
//!   written (global buffers created with [`crate::GlobalBuffer::uninit`]
//!   track a per-element init bitmap).
//!
//! The knob is [`SanitizerMode`]: `Off` (default — zero overhead, legacy
//! panic behaviour), `Warn` (collect reports into
//! [`crate::LaunchStats::sanitizer_reports`]), or `Fail` (a non-empty
//! report set fails the launch with [`SimError::SanitizerFailure`]).
//! Select it per launch via [`crate::LaunchConfig::with_sanitizer`] or
//! device-wide via [`crate::Device::with_sanitizer`].

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// How much checking a launch performs, and what happens on a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizerMode {
    /// No checking; out-of-bounds accesses panic as plain `Vec` indexing.
    #[default]
    Off,
    /// Check everything, collect reports, let the launch complete.
    Warn,
    /// Check everything; any report fails the launch
    /// ([`crate::Device::try_launch`] returns
    /// [`SimError::SanitizerFailure`], [`crate::Device::launch`] panics).
    Fail,
}

/// Which checker produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckerKind {
    /// Out-of-bounds global or shared access.
    Memcheck,
    /// Inter-warp shared-memory hazard without an intervening barrier.
    Racecheck,
    /// Divergent or mismatched barrier use.
    Synccheck,
    /// Read of never-written memory.
    Initcheck,
}

impl fmt::Display for CheckerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckerKind::Memcheck => "memcheck",
            CheckerKind::Racecheck => "racecheck",
            CheckerKind::Synccheck => "synccheck",
            CheckerKind::Initcheck => "initcheck",
        };
        f.write_str(s)
    }
}

/// The address space a report refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSpace {
    /// A [`crate::GlobalBuffer`], identified by its allocation id.
    Global {
        /// The buffer's process-unique id.
        buffer: u64,
    },
    /// A [`crate::SharedArray`], identified by its byte offset within the
    /// block's shared-memory pool.
    Shared {
        /// Byte offset of the array within the block's pool.
        base_byte: usize,
    },
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global { buffer } => write!(f, "global buffer #{buffer}"),
            MemSpace::Shared { base_byte } => write!(f, "shared array @+{base_byte}B"),
        }
    }
}

/// One finding from one checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// The checker that fired.
    pub kind: CheckerKind,
    /// Kernel name of the offending launch.
    pub kernel: String,
    /// Block the access happened in.
    pub block: usize,
    /// Warp within the block (`None` for host-style accesses).
    pub warp: Option<usize>,
    /// Lane within the warp (`None` for warp-wide or host findings).
    pub lane: Option<usize>,
    /// Which memory the finding refers to (`None` for barrier findings).
    pub space: Option<MemSpace>,
    /// Element offset within `space` (when applicable).
    pub offset: Option<usize>,
    /// Human-readable description of the hazard.
    pub detail: String,
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] kernel `{}` block {}",
            self.kind, self.kernel, self.block
        )?;
        if let Some(w) = self.warp {
            write!(f, " warp {w}")?;
        }
        if let Some(l) = self.lane {
            write!(f, " lane {l}")?;
        }
        if let Some(space) = &self.space {
            write!(f, " at {space}")?;
            if let Some(off) = self.offset {
                write!(f, "[{off}]")?;
            }
        }
        write!(f, ": {}", self.detail)
    }
}

/// A failed simulator operation, surfaced as a value instead of a panic.
///
/// [`crate::Device::try_launch`] returns this; [`crate::Device::launch`]
/// panics with its [`fmt::Display`] text, which keeps the historical
/// panic messages (`"shared memory over budget"`,
/// `"invalid threads_per_block"`, `"exceeds device limit"`) intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A shared-memory allocation exceeded the block's budget.
    SmemOverBudget {
        /// Bytes the failing allocation asked for.
        requested: usize,
        /// Bytes already allocated in the block.
        in_use: usize,
        /// The block's total budget.
        capacity: usize,
    },
    /// The launch geometry is invalid for the device.
    InvalidLaunchConfig(String),
    /// The launch ran under [`SanitizerMode::Fail`] and produced reports.
    SanitizerFailure {
        /// Kernel name of the failing launch.
        kernel: String,
        /// Every report the checkers produced.
        reports: Vec<SanitizerReport>,
    },
    /// A transient, retryable fault: an injected launch failure, a
    /// detected-and-corrected single-bit upset on a global buffer, or a
    /// corrupted lane recorded by a hardened warp primitive (see
    /// [`crate::fault`]). Retrying the same launch is expected to
    /// succeed.
    TransientFault {
        /// Kernel name of the failing launch.
        kernel: String,
        /// What went wrong, for logs and reports.
        detail: String,
    },
    /// The launch exceeded its watchdog budget
    /// ([`crate::LaunchConfig::with_watchdog`] /
    /// [`crate::Device::with_watchdog`]): some block issued more
    /// effective warp instructions than allowed, the usual signature of
    /// a livelocked loop.
    WatchdogTimeout {
        /// Kernel name of the failing launch.
        kernel: String,
        /// The per-block effective-issue budget that was exceeded.
        budget: u64,
    },
    /// A block-cooperative structure (hash table, shared-memory
    /// allocator) ran out of capacity at run time — the data-dependent
    /// failure the hybrid planner's fallback cascade exists to absorb.
    CapacityOverflow {
        /// Kernel name of the failing launch.
        kernel: String,
        /// Which structure overflowed (e.g. `smem-hash-table`).
        resource: String,
        /// What went wrong, for logs and reports.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SmemOverBudget {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "shared memory over budget: {in_use} + {requested} > {capacity} bytes"
            ),
            SimError::InvalidLaunchConfig(msg) => f.write_str(msg),
            SimError::SanitizerFailure { kernel, reports } => {
                writeln!(
                    f,
                    "sanitizer: {} finding(s) in kernel `{}`:",
                    reports.len(),
                    kernel
                )?;
                for r in reports.iter().take(8) {
                    writeln!(f, "  {r}")?;
                }
                if reports.len() > 8 {
                    writeln!(f, "  ... and {} more", reports.len() - 8)?;
                }
                Ok(())
            }
            SimError::TransientFault { kernel, detail } => {
                write!(f, "transient fault in kernel `{kernel}`: {detail}")
            }
            SimError::WatchdogTimeout { kernel, budget } => write!(
                f,
                "watchdog timeout in kernel `{kernel}`: exceeded {budget} effective issues per block"
            ),
            SimError::CapacityOverflow {
                kernel,
                resource,
                detail,
            } => write!(
                f,
                "capacity overflow in kernel `{kernel}` ({resource}): {detail}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Cap on collected reports per launch; a broken kernel touching a large
/// buffer would otherwise flood memory with identical findings.
const MAX_REPORTS: usize = 128;

/// Launch-wide sanitizer state: the mode knob and the report sink.
#[derive(Debug)]
pub(crate) struct LaunchSanitizer {
    mode: SanitizerMode,
    kernel: String,
    reports: RefCell<Vec<SanitizerReport>>,
    dropped: Cell<usize>,
}

impl LaunchSanitizer {
    pub(crate) fn new(mode: SanitizerMode, kernel: &str) -> Self {
        Self {
            mode,
            kernel: kernel.to_string(),
            reports: RefCell::new(Vec::new()),
            dropped: Cell::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.mode != SanitizerMode::Off
    }

    pub(crate) fn take_reports(&self) -> Vec<SanitizerReport> {
        self.reports.take()
    }

    /// Reports silently discarded past [`MAX_REPORTS`].
    pub(crate) fn dropped(&self) -> usize {
        self.dropped.get()
    }

    /// Merges one block's collected reports into this launch-wide sink,
    /// preserving the serial capping discipline: reports append in the
    /// order given until [`MAX_REPORTS`], the overflow joins the dropped
    /// count. The parallel executor gives every block its own collector
    /// and absorbs them in block order, which reproduces the serial
    /// path's retained set and dropped count exactly (serial fills the
    /// launch-wide sink in block order too).
    pub(crate) fn absorb(&self, reports: Vec<SanitizerReport>, dropped: usize) {
        self.dropped.set(self.dropped.get() + dropped);
        let mut sink = self.reports.borrow_mut();
        for r in reports {
            if sink.len() >= MAX_REPORTS {
                self.dropped.set(self.dropped.get() + 1);
            } else {
                sink.push(r);
            }
        }
    }
}

/// Per-block sanitizer state: the barrier epoch (advanced by every
/// [`crate::BlockCtx::sync`]) and per-warp barrier-arrival counts.
#[derive(Debug)]
pub(crate) struct BlockSanitizer {
    launch: Rc<LaunchSanitizer>,
    block_id: usize,
    epoch: Cell<u64>,
    arrivals: RefCell<Vec<u64>>,
}

impl BlockSanitizer {
    pub(crate) fn new(launch: Rc<LaunchSanitizer>, block_id: usize, warps: usize) -> Self {
        Self {
            launch,
            block_id,
            epoch: Cell::new(0),
            arrivals: RefCell::new(vec![0; warps.max(1)]),
        }
    }

    /// A no-op sanitizer for contexts built outside a launch (tests).
    #[cfg(test)]
    pub(crate) fn disabled() -> Self {
        Self::new(Rc::new(LaunchSanitizer::new(SanitizerMode::Off, "")), 0, 1)
    }

    pub(crate) fn enabled(&self) -> bool {
        self.launch.enabled()
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    pub(crate) fn report(
        &self,
        kind: CheckerKind,
        warp: Option<usize>,
        lane: Option<usize>,
        space: Option<MemSpace>,
        offset: Option<usize>,
        detail: String,
    ) {
        let mut reports = self.launch.reports.borrow_mut();
        if reports.len() >= MAX_REPORTS {
            self.launch.dropped.set(self.launch.dropped.get() + 1);
            return;
        }
        reports.push(SanitizerReport {
            kind,
            kernel: self.launch.kernel.clone(),
            block: self.block_id,
            warp,
            lane,
            space,
            offset,
            detail,
        });
    }

    /// Records warp `warp` arriving at a barrier under mask fullness
    /// `full`; a partial mask is an immediate synccheck finding (CUDA's
    /// "barrier in divergent code" hazard).
    pub(crate) fn barrier_arrival(&self, warp: usize, active_lanes: usize, full: bool) {
        {
            let mut arr = self.arrivals.borrow_mut();
            if warp < arr.len() {
                arr[warp] += 1;
            }
        }
        if self.enabled() && !full {
            self.report(
                CheckerKind::Synccheck,
                Some(warp),
                None,
                None,
                None,
                format!(
                    "barrier reached under a divergent mask ({active_lanes}/{} lanes active)",
                    crate::warp::WARP_SIZE
                ),
            );
        }
    }

    /// Advances the barrier epoch at a block-wide `__syncthreads()` and
    /// verifies every warp announced the same number of arrivals.
    pub(crate) fn block_sync(&self) {
        if self.enabled() {
            let arr = self.arrivals.borrow();
            let max = arr.iter().copied().max().unwrap_or(0);
            let min = arr.iter().copied().min().unwrap_or(0);
            if max != min {
                self.report(
                    CheckerKind::Synccheck,
                    None,
                    None,
                    None,
                    None,
                    format!(
                        "mismatched barrier participation across warps (arrival counts {:?})",
                        &*arr
                    ),
                );
            }
        }
        self.arrivals.borrow_mut().fill(0);
        self.epoch.set(self.epoch.get() + 1);
    }
}

/// One memory access in the racecheck shadow.
#[derive(Debug, Clone, Copy)]
struct Access {
    warp: usize,
    epoch: u64,
    atomic: bool,
}

impl Access {
    /// Whether `self` (an earlier access) conflicts with a new access by
    /// `warp` in `epoch`: different warps, same barrier epoch, and not
    /// both atomic.
    fn conflicts(&self, warp: usize, epoch: u64, atomic: bool) -> bool {
        self.warp != warp && self.epoch == epoch && !(self.atomic && atomic)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ElemShadow {
    init: bool,
    writer: Option<Access>,
    reader: Option<Access>,
}

/// Per-element shadow state of one [`crate::SharedArray`]: initialization
/// bit plus last writer / reader for racecheck.
#[derive(Debug)]
pub(crate) struct SmemShadow {
    san: Rc<BlockSanitizer>,
    base_byte: usize,
    elems: RefCell<Vec<ElemShadow>>,
}

impl SmemShadow {
    pub(crate) fn new(san: Rc<BlockSanitizer>, base_byte: usize, len: usize) -> Self {
        Self {
            san,
            base_byte,
            elems: RefCell::new(vec![ElemShadow::default(); len]),
        }
    }

    fn space(&self) -> Option<MemSpace> {
        Some(MemSpace::Shared {
            base_byte: self.base_byte,
        })
    }

    /// Host-style bulk initialization (`fill`, or a block-collective
    /// macro-op like the bitonic sort that is internally synchronized):
    /// marks every element initialized and clears the race history.
    pub(crate) fn host_bulk(&self) {
        for e in self.elems.borrow_mut().iter_mut() {
            *e = ElemShadow {
                init: true,
                writer: None,
                reader: None,
            };
        }
    }

    /// Host-style single-element write (serialized emulation).
    pub(crate) fn host_write(&self, idx: usize) {
        if let Some(e) = self.elems.borrow_mut().get_mut(idx) {
            e.init = true;
            e.writer = None;
            e.reader = None;
        }
    }

    /// Host-style single-element read: initcheck only.
    pub(crate) fn host_read(&self, idx: usize) {
        let uninit = self.elems.borrow().get(idx).is_some_and(|e| !e.init);
        if uninit {
            self.san.report(
                CheckerKind::Initcheck,
                None,
                None,
                self.space(),
                Some(idx),
                "read of uninitialized shared memory".to_string(),
            );
        }
    }

    /// A lane of `warp` reads element `idx`.
    pub(crate) fn warp_read(&self, idx: usize, warp: usize, lane: usize, atomic: bool) {
        let epoch = self.san.epoch();
        let mut elems = self.elems.borrow_mut();
        let Some(e) = elems.get_mut(idx) else { return };
        let uninit = !e.init;
        let race = e.writer.filter(|w| w.conflicts(warp, epoch, atomic));
        e.reader = Some(Access {
            warp,
            epoch,
            atomic,
        });
        drop(elems);
        if uninit {
            self.san.report(
                CheckerKind::Initcheck,
                Some(warp),
                Some(lane),
                self.space(),
                Some(idx),
                "read of uninitialized shared memory".to_string(),
            );
        }
        if let Some(w) = race {
            self.san.report(
                CheckerKind::Racecheck,
                Some(warp),
                Some(lane),
                self.space(),
                Some(idx),
                format!(
                    "read-after-write hazard: warp {} wrote this element in the same barrier epoch",
                    w.warp
                ),
            );
        }
    }

    /// A lane of `warp` writes element `idx`.
    pub(crate) fn warp_write(&self, idx: usize, warp: usize, lane: usize, atomic: bool) {
        let epoch = self.san.epoch();
        let mut elems = self.elems.borrow_mut();
        let Some(e) = elems.get_mut(idx) else { return };
        let waw = e.writer.filter(|w| w.conflicts(warp, epoch, atomic));
        let war = e.reader.filter(|r| r.conflicts(warp, epoch, atomic));
        e.init = true;
        e.writer = Some(Access {
            warp,
            epoch,
            atomic,
        });
        drop(elems);
        if let Some(w) = waw {
            self.san.report(
                CheckerKind::Racecheck,
                Some(warp),
                Some(lane),
                self.space(),
                Some(idx),
                format!(
                    "write-after-write hazard: warp {} wrote this element in the same barrier epoch",
                    w.warp
                ),
            );
        }
        if let Some(r) = war {
            self.san.report(
                CheckerKind::Racecheck,
                Some(warp),
                Some(lane),
                self.space(),
                Some(idx),
                format!(
                    "write-after-read hazard: warp {} read this element in the same barrier epoch",
                    r.warp
                ),
            );
        }
    }

    /// A lane of `warp` performs an atomic read-modify-write on `idx`.
    pub(crate) fn warp_atomic(&self, idx: usize, warp: usize, lane: usize) {
        // An atomic is a read and a write with atomic semantics; checking
        // the write side covers conflicts against both plain readers and
        // plain writers, and the read side adds initcheck.
        let uninit = self.elems.borrow().get(idx).is_some_and(|e| !e.init);
        if uninit {
            self.san.report(
                CheckerKind::Initcheck,
                Some(warp),
                Some(lane),
                self.space(),
                Some(idx),
                "atomic read-modify-write of uninitialized shared memory".to_string(),
            );
        }
        self.warp_write(idx, warp, lane, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_defaults_off() {
        assert_eq!(SanitizerMode::default(), SanitizerMode::Off);
    }

    #[test]
    fn report_display_names_the_site() {
        let r = SanitizerReport {
            kind: CheckerKind::Memcheck,
            kernel: "k".into(),
            block: 3,
            warp: Some(1),
            lane: Some(7),
            space: Some(MemSpace::Global { buffer: 42 }),
            offset: Some(99),
            detail: "index 99 out of bounds (len 10)".into(),
        };
        let s = r.to_string();
        assert!(s.contains("memcheck"), "{s}");
        assert!(s.contains("block 3"), "{s}");
        assert!(s.contains("warp 1"), "{s}");
        assert!(s.contains("lane 7"), "{s}");
        assert!(s.contains("#42"), "{s}");
        assert!(s.contains("[99]"), "{s}");
    }

    #[test]
    fn sim_error_preserves_legacy_panic_strings() {
        let e = SimError::SmemOverBudget {
            requested: 136,
            in_use: 0,
            capacity: 128,
        };
        assert_eq!(
            e.to_string(),
            "shared memory over budget: 0 + 136 > 128 bytes"
        );
        let e = SimError::InvalidLaunchConfig("invalid threads_per_block 33".into());
        assert!(e.to_string().contains("invalid threads_per_block"));
    }

    #[test]
    fn report_cap_drops_overflow() {
        let lsan = Rc::new(LaunchSanitizer::new(SanitizerMode::Warn, "k"));
        let bsan = BlockSanitizer::new(lsan.clone(), 0, 1);
        for i in 0..MAX_REPORTS + 10 {
            bsan.report(CheckerKind::Memcheck, None, None, None, Some(i), "x".into());
        }
        assert_eq!(lsan.take_reports().len(), MAX_REPORTS);
        assert_eq!(lsan.dropped(), 10);
    }

    #[test]
    fn shadow_flags_cross_warp_same_epoch_only() {
        let lsan = Rc::new(LaunchSanitizer::new(SanitizerMode::Warn, "k"));
        let bsan = Rc::new(BlockSanitizer::new(lsan.clone(), 0, 2));
        let shadow = SmemShadow::new(bsan.clone(), 0, 4);
        shadow.warp_write(0, 0, 0, false);
        shadow.warp_write(0, 0, 1, false); // same warp: no hazard
        shadow.warp_write(0, 1, 0, false); // other warp, same epoch: WAW
        bsan.block_sync();
        shadow.warp_read(0, 0, 0, false); // next epoch: clean
        let reports = lsan.take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].kind, CheckerKind::Racecheck);
    }

    #[test]
    fn shadow_atomics_do_not_race_each_other() {
        let lsan = Rc::new(LaunchSanitizer::new(SanitizerMode::Warn, "k"));
        let bsan = Rc::new(BlockSanitizer::new(lsan.clone(), 0, 2));
        let shadow = SmemShadow::new(bsan.clone(), 0, 4);
        shadow.host_bulk(); // initialize
        shadow.warp_atomic(2, 0, 0);
        shadow.warp_atomic(2, 1, 0); // atomic vs atomic: clean
        shadow.warp_write(2, 0, 0, false); // plain vs atomic: hazard
        let reports = lsan.take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].kind, CheckerKind::Racecheck);
    }

    #[test]
    fn shadow_initcheck_fires_once_per_uninit_read() {
        let lsan = Rc::new(LaunchSanitizer::new(SanitizerMode::Warn, "k"));
        let bsan = Rc::new(BlockSanitizer::new(lsan.clone(), 0, 1));
        let shadow = SmemShadow::new(bsan, 0, 2);
        shadow.warp_read(1, 0, 5, false);
        shadow.warp_write(1, 0, 5, false);
        shadow.warp_read(1, 0, 5, false); // now initialized
        let reports = lsan.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, CheckerKind::Initcheck);
        assert_eq!(reports[0].lane, Some(5));
    }

    #[test]
    fn barrier_arrival_mismatch_is_synccheck() {
        let lsan = Rc::new(LaunchSanitizer::new(SanitizerMode::Warn, "k"));
        let bsan = BlockSanitizer::new(lsan.clone(), 0, 2);
        bsan.barrier_arrival(0, 32, true);
        bsan.barrier_arrival(0, 32, true);
        bsan.barrier_arrival(1, 32, true);
        bsan.block_sync();
        // Counts reset after the sync: a balanced round is clean.
        bsan.barrier_arrival(0, 32, true);
        bsan.barrier_arrival(1, 32, true);
        bsan.block_sync();
        let reports = lsan.take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].kind, CheckerKind::Synccheck);
    }

    #[test]
    fn divergent_barrier_mask_is_synccheck() {
        let lsan = Rc::new(LaunchSanitizer::new(SanitizerMode::Warn, "k"));
        let bsan = BlockSanitizer::new(lsan.clone(), 0, 1);
        bsan.barrier_arrival(0, 20, false);
        let reports = lsan.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, CheckerKind::Synccheck);
        assert!(reports[0].detail.contains("divergent mask"));
    }
}
