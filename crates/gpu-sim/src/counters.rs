//! Hardware event counters accumulated during simulated execution.

/// Event counters for one launch (or one warp, before aggregation).
///
/// Every quantity §3 of the paper reasons about — divergent branches,
/// uncoalesced transactions, bank conflicts, atomic contention — is a
/// field here, so kernel comparisons can cite measured counts rather than
/// intuition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Warp-level instructions issued (each SIMD op = 1, regardless of
    /// how many lanes are active).
    pub issues: u64,
    /// Extra serialized issues caused by intra-warp branch divergence
    /// (a warp whose lanes take `g` distinct paths pays `g − 1` extra).
    pub divergence_extra: u64,
    /// Coalesced global-memory transactions (128-byte segments touched).
    pub global_transactions: u64,
    /// Bytes actually moved to/from device memory (transactions × segment
    /// size).
    pub global_bytes: u64,
    /// Bytes the lanes *requested* (for coalescing-efficiency ratios).
    pub global_bytes_requested: u64,
    /// Bytes of *distinct* memory segments touched during the launch —
    /// the compulsory-miss floor the L2 model uses to discount re-read
    /// traffic.
    pub global_bytes_unique: u64,
    /// Shared-memory access instructions.
    pub smem_accesses: u64,
    /// Extra serialized shared-memory cycles from bank conflicts (an
    /// access replayed `c` times pays `c − 1` extra).
    pub bank_conflict_extra: u64,
    /// Atomic operations on global memory.
    pub atomics: u64,
    /// Extra serialization from atomics in the same warp hitting the same
    /// address.
    pub atomic_conflict_extra: u64,
    /// `__syncthreads()`-style block barriers executed.
    pub barriers: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.issues += other.issues;
        self.divergence_extra += other.divergence_extra;
        self.global_transactions += other.global_transactions;
        self.global_bytes += other.global_bytes;
        self.global_bytes_requested += other.global_bytes_requested;
        self.global_bytes_unique += other.global_bytes_unique;
        self.smem_accesses += other.smem_accesses;
        self.bank_conflict_extra += other.bank_conflict_extra;
        self.atomics += other.atomics;
        self.atomic_conflict_extra += other.atomic_conflict_extra;
        self.barriers += other.barriers;
    }

    /// Fieldwise difference `self − earlier`, saturating at zero.
    ///
    /// Counters only ever grow during a launch, so snapshot-and-diff is
    /// how the profiler attributes cost to a region: snapshot at range
    /// open, `delta_since` at range close. Saturation (rather than a
    /// panic) keeps a misused pair of snapshots from poisoning a whole
    /// profile.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            issues: self.issues.saturating_sub(earlier.issues),
            divergence_extra: self
                .divergence_extra
                .saturating_sub(earlier.divergence_extra),
            global_transactions: self
                .global_transactions
                .saturating_sub(earlier.global_transactions),
            global_bytes: self.global_bytes.saturating_sub(earlier.global_bytes),
            global_bytes_requested: self
                .global_bytes_requested
                .saturating_sub(earlier.global_bytes_requested),
            global_bytes_unique: self
                .global_bytes_unique
                .saturating_sub(earlier.global_bytes_unique),
            smem_accesses: self.smem_accesses.saturating_sub(earlier.smem_accesses),
            bank_conflict_extra: self
                .bank_conflict_extra
                .saturating_sub(earlier.bank_conflict_extra),
            atomics: self.atomics.saturating_sub(earlier.atomics),
            atomic_conflict_extra: self
                .atomic_conflict_extra
                .saturating_sub(earlier.atomic_conflict_extra),
            barriers: self.barriers.saturating_sub(earlier.barriers),
        }
    }

    /// Total issue slots consumed once divergence, bank-conflict and
    /// atomic serialization are charged.
    pub fn effective_issues(&self) -> u64 {
        self.issues + self.divergence_extra + self.bank_conflict_extra + self.atomic_conflict_extra
    }

    /// Fraction of requested bytes that the coalesced transactions
    /// actually had to move; 1.0 = perfectly coalesced, larger = wasted
    /// bandwidth. Returns 1.0 when nothing was requested.
    pub fn coalescing_overhead(&self) -> f64 {
        if self.global_bytes_requested == 0 {
            1.0
        } else {
            self.global_bytes as f64 / self.global_bytes_requested as f64
        }
    }

    /// Fraction of issues wasted on divergence serialization.
    pub fn divergence_ratio(&self) -> f64 {
        if self.issues == 0 {
            0.0
        } else {
            self.divergence_extra as f64 / self.issues as f64
        }
    }

    /// DRAM re-read factor: bytes moved over distinct bytes touched.
    /// 1.0 = every segment fetched exactly once; larger values are the
    /// re-read traffic the L2 model discounts (`cost::estimate`).
    /// Returns 1.0 when no unique bytes were recorded.
    pub fn reread_ratio(&self) -> f64 {
        if self.global_bytes_unique == 0 {
            1.0
        } else {
            self.global_bytes as f64 / self.global_bytes_unique as f64
        }
    }
}

impl std::fmt::Display for Counters {
    /// One-line human-readable summary, e.g. for example programs that
    /// print the hardware behaviour behind a result.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} issues ({:.1}% divergence), {} txns ({:.2}x coalescing overhead), \
             {} unique bytes ({:.2}x reread), {} smem ops (+{} bank replays), \
             {} atomics (+{} serialized), {} barriers",
            self.issues,
            self.divergence_ratio() * 100.0,
            self.global_transactions,
            self.coalescing_overhead(),
            self.global_bytes_unique,
            self.reread_ratio(),
            self.smem_accesses,
            self.bank_conflict_extra,
            self.atomics,
            self.atomic_conflict_extra,
            self.barriers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = Counters {
            issues: 10,
            divergence_extra: 1,
            global_transactions: 2,
            global_bytes: 256,
            global_bytes_requested: 128,
            global_bytes_unique: 256,
            smem_accesses: 5,
            bank_conflict_extra: 3,
            atomics: 4,
            atomic_conflict_extra: 2,
            barriers: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.issues, 20);
        assert_eq!(a.global_bytes, 512);
        assert_eq!(a.barriers, 2);
    }

    #[test]
    fn effective_issues_charges_all_serialization() {
        let c = Counters {
            issues: 100,
            divergence_extra: 10,
            bank_conflict_extra: 5,
            atomic_conflict_extra: 2,
            ..Counters::default()
        };
        assert_eq!(c.effective_issues(), 117);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = Counters::default();
        assert_eq!(c.coalescing_overhead(), 1.0);
        assert_eq!(c.divergence_ratio(), 0.0);
    }

    #[test]
    fn display_summarizes_key_ratios() {
        let c = Counters {
            issues: 100,
            divergence_extra: 50,
            global_transactions: 7,
            global_bytes: 896,
            global_bytes_requested: 448,
            global_bytes_unique: 448,
            barriers: 3,
            ..Counters::default()
        };
        let s = c.to_string();
        assert!(s.contains("100 issues"), "{s}");
        assert!(s.contains("50.0% divergence"), "{s}");
        assert!(s.contains("2.00x coalescing"), "{s}");
        // The full ledger is visible: L2 re-read discount and barriers.
        assert!(s.contains("448 unique bytes (2.00x reread)"), "{s}");
        assert!(s.contains("3 barriers"), "{s}");
    }

    #[test]
    fn delta_since_subtracts_fieldwise_and_saturates() {
        let early = Counters {
            issues: 10,
            global_bytes: 256,
            barriers: 1,
            ..Counters::default()
        };
        let late = Counters {
            issues: 25,
            divergence_extra: 4,
            global_bytes: 512,
            barriers: 3,
            ..Counters::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.issues, 15);
        assert_eq!(d.divergence_extra, 4);
        assert_eq!(d.global_bytes, 256);
        assert_eq!(d.barriers, 2);
        // Reversed snapshots saturate instead of wrapping.
        let r = early.delta_since(&late);
        assert_eq!(r.issues, 0);
        assert_eq!(r.global_bytes, 0);
    }

    #[test]
    fn reread_ratio_handles_zero_unique() {
        assert_eq!(Counters::default().reread_ratio(), 1.0);
        let c = Counters {
            global_bytes: 1024,
            global_bytes_unique: 256,
            ..Counters::default()
        };
        assert_eq!(c.reread_ratio(), 4.0);
    }

    #[test]
    fn coalescing_overhead_reflects_waste() {
        let c = Counters {
            global_bytes: 1280,
            global_bytes_requested: 128,
            ..Counters::default()
        };
        assert_eq!(c.coalescing_overhead(), 10.0);
    }
}
