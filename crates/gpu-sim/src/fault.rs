//! Deterministic fault injection for simulated launches.
//!
//! Real GPU deployments see faults the functional model alone never
//! produces: transient launch failures (driver hiccups, ECC events),
//! single-bit upsets in device memory, allocation failures under
//! fragmentation, and data-dependent capacity overflows in
//! block-cooperative structures. This module lets a test or a resilience
//! layer schedule those faults *deterministically* — a [`FaultPlan`] is
//! seeded, draws its per-launch decisions from [`crate::murmur::murmur3_32`]
//! over a launch ordinal, and never consults the wall clock — so a run
//! that absorbed a fault can be replayed bit-for-bit.
//!
//! Four fault classes are supported:
//!
//! * **Transient launch failures** — the launch fails before any block
//!   runs, with [`SimError::TransientFault`]. A retry (which advances the
//!   launch ordinal) re-rolls the decision.
//! * **Single-bit upsets** on *named* [`crate::GlobalBuffer`]s — modeled
//!   as an ECC event: the first kernel access to a buffer whose label
//!   matches the plan's target detects the flip, the storage is treated
//!   as corrected, and the launch is retired with
//!   [`SimError::TransientFault`] so the host can re-issue it. User data
//!   is never actually corrupted, which keeps retried runs byte-identical
//!   to fault-free runs.
//! * **Forced shared-memory allocation failures** — the first
//!   [`crate::BlockCtx::alloc_shared`] of a selected launch records a
//!   [`SimError::CapacityOverflow`]; the kernel limps to the end of the
//!   block on a working array (the same record-and-limp discipline as
//!   [`crate::SharedMem`]'s over-budget path).
//! * **Injected hash-table insert overflow** — the first
//!   [`crate::SmemHashTable::insert_warp`] of a selected launch behaves
//!   as if the table were full, recording a
//!   [`SimError::CapacityOverflow`].
//!
//! All recorded faults surface through the existing
//! `take_fault`/[`crate::Device::try_launch`] path: the block finishes,
//! the launch returns `Err`, and the caller (typically the `kernels`
//! resilience engine) decides whether to retry or to fall back.
//!
//! An unarmed plan ([`FaultPlan::none`], the default) costs one pointer
//! check per launch and leaves counters, cost estimates, and outputs
//! byte-identical to a device without a plan.

use std::cell::{Cell, RefCell};

use crate::murmur::murmur3_32;
use crate::sanitizer::SimError;

/// Per-mille (0..=1000) probability used by every injection knob. A rate
/// of 1000 fires on every launch; 0 never fires.
pub type PerMille = u16;

/// Target of the single-bit-upset injector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FlipSpec {
    /// Label of the [`crate::GlobalBuffer`] to hit (see
    /// [`crate::GlobalBuffer::set_label`]).
    buffer: String,
    rate: PerMille,
}

/// A seeded, deterministic schedule of faults to inject into launches.
///
/// Attach it to a device with [`crate::Device::with_fault_plan`]. Each
/// [`crate::Device::try_launch`] consumes one launch ordinal and rolls
/// every armed fault class independently against it, so identical seeds
/// and launch sequences produce identical faults.
///
/// ```
/// use gpu_sim::{Device, FaultPlan, LaunchConfig, SimError};
///
/// let plan = FaultPlan::seeded(42).with_transient_launch_failures(1000);
/// let dev = Device::volta().with_fault_plan(plan);
/// let err = dev.try_launch("noop", LaunchConfig::new(1, 32, 0), |_| {});
/// assert!(matches!(err, Err(SimError::TransientFault { .. })));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    transient: PerMille,
    smem_fail: PerMille,
    hash_overflow: PerMille,
    flip: Option<FlipSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default). Devices carrying it
    /// behave byte-identically to devices without a plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with the given seed and no fault classes armed yet.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Arms transient launch failures at `rate` per mille: a selected
    /// launch fails with [`SimError::TransientFault`] before any block
    /// runs.
    pub fn with_transient_launch_failures(mut self, rate: PerMille) -> Self {
        self.transient = rate.min(1000);
        self
    }

    /// Arms forced shared-memory allocation failures at `rate` per
    /// mille: the first `alloc_shared` of a selected launch records a
    /// [`SimError::CapacityOverflow`].
    pub fn with_smem_alloc_failures(mut self, rate: PerMille) -> Self {
        self.smem_fail = rate.min(1000);
        self
    }

    /// Arms injected hash-table insert overflow at `rate` per mille: the
    /// first `insert_warp` of a selected launch behaves as if the table
    /// were full.
    pub fn with_hash_overflows(mut self, rate: PerMille) -> Self {
        self.hash_overflow = rate.min(1000);
        self
    }

    /// Arms single-bit upsets on the global buffer labeled `buffer` at
    /// `rate` per mille (see [`crate::GlobalBuffer::set_label`]). The
    /// upset is detected at the first kernel access and surfaces as
    /// [`SimError::TransientFault`] (the ECC corrected-and-retired
    /// model); buffer contents are not altered.
    pub fn with_bit_flips(mut self, buffer: &str, rate: PerMille) -> Self {
        self.flip = Some(FlipSpec {
            buffer: buffer.to_string(),
            rate: rate.min(1000),
        });
        self
    }

    /// Whether any fault class is armed.
    pub fn is_armed(&self) -> bool {
        self.transient > 0
            || self.smem_fail > 0
            || self.hash_overflow > 0
            || self.flip.as_ref().is_some_and(|f| f.rate > 0)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Deterministic per-mille roll for launch `ordinal` and fault-class
    /// `salt`: murmur-mixed, seed-dependent, wall-clock-free.
    fn roll(&self, ordinal: u64, salt: u32) -> u32 {
        let lo = (ordinal & 0xffff_ffff) as u32;
        let hi = (ordinal >> 32) as u32;
        let s = (self.seed as u32) ^ ((self.seed >> 32) as u32).wrapping_mul(0x9e37_79b9);
        let h = murmur3_32(lo ^ salt, s);
        murmur3_32(hi ^ h, s ^ salt)
    }

    /// Rolls every armed fault class against launch `ordinal`.
    pub(crate) fn decide(&self, ordinal: u64) -> InjectionSet {
        const SALT_TRANSIENT: u32 = 0x7261_6e73; // "rans"
        const SALT_SMEM: u32 = 0x736d_656d; // "smem"
        const SALT_HASH: u32 = 0x6861_7368; // "hash"
        const SALT_FLIP: u32 = 0x666c_6970; // "flip"
        let hit =
            |rate: PerMille, salt: u32| rate > 0 && self.roll(ordinal, salt) % 1000 < rate as u32;
        InjectionSet {
            ordinal,
            transient: hit(self.transient, SALT_TRANSIENT),
            smem_fail: hit(self.smem_fail, SALT_SMEM),
            hash_overflow: hit(self.hash_overflow, SALT_HASH),
            flip: self.flip.as_ref().and_then(|f| {
                hit(f.rate, SALT_FLIP).then(|| FlipTarget {
                    buffer: f.buffer.clone(),
                    entropy: self.roll(ordinal, SALT_FLIP ^ 0xe17a),
                })
            }),
        }
    }
}

/// Shared, interior-mutable plan state held by a [`crate::Device`]: the
/// plan plus the monotonically increasing launch ordinal its decisions
/// key off. Cloned devices share the ordinal, so a fixed launch sequence
/// sees a fixed fault sequence regardless of which handle issued it.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    ordinal: Cell<u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            ordinal: Cell::new(0),
        }
    }

    /// Consumes and returns the next launch ordinal.
    pub(crate) fn next_ordinal(&self) -> u64 {
        let o = self.ordinal.get();
        self.ordinal.set(o + 1);
        o
    }
}

/// The resolved injection decisions for one launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct InjectionSet {
    pub(crate) ordinal: u64,
    pub(crate) transient: bool,
    pub(crate) smem_fail: bool,
    pub(crate) hash_overflow: bool,
    pub(crate) flip: Option<FlipTarget>,
}

/// A scheduled single-bit upset: which labeled buffer to hit and the
/// entropy that picks the element/bit once the buffer's length is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FlipTarget {
    pub(crate) buffer: String,
    pub(crate) entropy: u32,
}

/// Panic payload used by the watchdog to unwind out of a runaway kernel
/// closure; [`crate::Device::try_launch`] catches it and converts it to
/// [`SimError::WatchdogTimeout`].
pub(crate) struct WatchdogAbort;

/// Launch-wide fault context: the injection decisions for this launch,
/// the effective watchdog budget, and the record-and-limp fault slot that
/// hardened warp primitives write into. Mirrors the
/// `LaunchSanitizer`/`BlockSanitizer` sharing pattern — one per launch,
/// handed to every block and warp context.
#[derive(Debug)]
pub(crate) struct LaunchFaults {
    kernel: String,
    watchdog: Option<u64>,
    inject: Option<InjectionSet>,
    slot: RefCell<Option<SimError>>,
    smem_fired: Cell<bool>,
    hash_fired: Cell<bool>,
    flip_fired: Cell<bool>,
}

impl LaunchFaults {
    pub(crate) fn new(kernel: &str, inject: Option<InjectionSet>, watchdog: Option<u64>) -> Self {
        Self {
            kernel: kernel.to_string(),
            watchdog,
            inject,
            slot: RefCell::new(None),
            smem_fired: Cell::new(false),
            hash_fired: Cell::new(false),
            flip_fired: Cell::new(false),
        }
    }

    /// A context with no injections and no watchdog (tests).
    #[cfg(test)]
    pub(crate) fn disabled() -> Self {
        Self::new("", None, None)
    }

    pub(crate) fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Per-block effective-issue budget, when a watchdog is armed.
    #[inline]
    pub(crate) fn watchdog(&self) -> Option<u64> {
        self.watchdog
    }

    /// Records a fault; the first one wins (later records are dropped,
    /// matching [`crate::SharedMem`]'s lenient-allocation slot).
    pub(crate) fn record(&self, e: SimError) {
        let mut slot = self.slot.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Whether a fault has been recorded for this launch.
    pub(crate) fn pending(&self) -> bool {
        self.slot.borrow().is_some()
    }

    /// Drains the recorded fault, if any.
    pub(crate) fn take(&self) -> Option<SimError> {
        self.slot.borrow_mut().take()
    }

    /// True exactly once per selected launch: consumes the scheduled
    /// shared-memory allocation failure.
    pub(crate) fn take_injected_smem_failure(&self) -> bool {
        match &self.inject {
            Some(set) if set.smem_fail && !self.smem_fired.get() => {
                self.smem_fired.set(true);
                true
            }
            _ => false,
        }
    }

    /// True exactly once per selected launch: consumes the scheduled
    /// hash-table insert overflow.
    pub(crate) fn take_injected_hash_overflow(&self) -> bool {
        match &self.inject {
            Some(set) if set.hash_overflow && !self.hash_fired.get() => {
                self.hash_fired.set(true);
                true
            }
            _ => false,
        }
    }

    /// Fast pre-check used by the global-memory access paths: is a bit
    /// flip scheduled and still unfired?
    #[inline]
    pub(crate) fn wants_flip(&self) -> bool {
        !self.flip_fired.get() && self.inject.as_ref().is_some_and(|set| set.flip.is_some())
    }

    /// Called on each global access when [`Self::wants_flip`]: if the
    /// accessed buffer's label matches the scheduled target, the upset
    /// fires — a [`SimError::TransientFault`] is recorded (the ECC
    /// detected-and-corrected model) and the injector disarms.
    pub(crate) fn maybe_flip(&self, label: Option<&str>, len: usize, elem_bits: u32) {
        let Some(set) = &self.inject else { return };
        let Some(target) = &set.flip else { return };
        if label != Some(target.buffer.as_str()) {
            return;
        }
        self.flip_fired.set(true);
        let elem = if len == 0 {
            0
        } else {
            target.entropy as usize % len
        };
        let bit = murmur3_32(target.entropy, 0x0b17) % elem_bits.max(1);
        self.record(SimError::TransientFault {
            kernel: self.kernel.clone(),
            detail: format!(
                "single-bit upset detected in buffer `{}` element {elem} bit {bit} \
                 (ECC-corrected; launch retired, launch #{})",
                target.buffer, set.ordinal
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_decides_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_armed());
        for o in 0..64 {
            let set = plan.decide(o);
            assert!(!set.transient && !set.smem_fail && !set.hash_overflow);
            assert!(set.flip.is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::seeded(7).with_transient_launch_failures(250);
        let b = FaultPlan::seeded(7).with_transient_launch_failures(250);
        let c = FaultPlan::seeded(8).with_transient_launch_failures(250);
        let hits = |p: &FaultPlan| (0..256).map(|o| p.decide(o).transient).collect::<Vec<_>>();
        assert_eq!(hits(&a), hits(&b));
        assert_ne!(hits(&a), hits(&c), "different seeds should differ");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::seeded(3).with_hash_overflows(500);
        let hits = (0..1000).filter(|&o| plan.decide(o).hash_overflow).count();
        assert!((350..650).contains(&hits), "500‰ drew {hits}/1000");
    }

    #[test]
    fn fault_classes_roll_independently() {
        let plan = FaultPlan::seeded(11)
            .with_transient_launch_failures(300)
            .with_smem_alloc_failures(300);
        let same = (0..512)
            .map(|o| plan.decide(o))
            .filter(|s| s.transient == s.smem_fail)
            .count();
        // Perfect correlation would give 512; independence lands near
        // 0.3·0.3 + 0.7·0.7 ≈ 58%.
        assert!(same < 450, "transient and smem decisions track each other");
    }

    #[test]
    fn injections_fire_once() {
        let set = FaultPlan::seeded(0)
            .with_smem_alloc_failures(1000)
            .with_hash_overflows(1000)
            .decide(0);
        let lf = LaunchFaults::new("k", Some(set), None);
        assert!(lf.take_injected_smem_failure());
        assert!(!lf.take_injected_smem_failure());
        assert!(lf.take_injected_hash_overflow());
        assert!(!lf.take_injected_hash_overflow());
    }

    #[test]
    fn flip_matches_label_and_records_transient() {
        let set = FaultPlan::seeded(0)
            .with_bit_flips("coo.values", 1000)
            .decide(0);
        let lf = LaunchFaults::new("hybrid", Some(set), None);
        assert!(lf.wants_flip());
        lf.maybe_flip(Some("coo.rows"), 64, 64);
        assert!(!lf.pending(), "wrong label must not fire");
        lf.maybe_flip(None, 64, 64);
        assert!(!lf.pending(), "unlabeled buffer must not fire");
        lf.maybe_flip(Some("coo.values"), 64, 64);
        assert!(!lf.wants_flip(), "flip disarms after firing");
        match lf.take() {
            Some(SimError::TransientFault { kernel, detail }) => {
                assert_eq!(kernel, "hybrid");
                assert!(detail.contains("single-bit upset"));
                assert!(detail.contains("coo.values"));
            }
            other => panic!("expected TransientFault, got {other:?}"),
        }
    }

    #[test]
    fn first_recorded_fault_wins() {
        let lf = LaunchFaults::new("k", None, None);
        lf.record(SimError::InvalidLaunchConfig("first".into()));
        lf.record(SimError::InvalidLaunchConfig("second".into()));
        assert_eq!(
            lf.take(),
            Some(SimError::InvalidLaunchConfig("first".into()))
        );
        assert_eq!(lf.take(), None);
    }
}
