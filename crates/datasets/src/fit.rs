//! Fitting a [`DatasetProfile`] to an existing matrix.
//!
//! The paper's premise (§4.1) is that kernel performance is governed by
//! a dataset's *shape statistics* — dimensions, density, and the degree
//! distribution — rather than its cell values. [`fit_profile`] estimates
//! those statistics from any CSR matrix, producing a generator profile
//! whose synthetic replicas share them: the tool for benchmarking
//! against the shape of a private dataset without shipping the data.

use crate::distributions::{DegreeDist, ValueDist};
use crate::profiles::{DatasetProfile, PaperStats};
use sparse::{CsrMatrix, Real};

/// Estimates a generator profile from a matrix's shape statistics.
///
/// Degrees are modeled as a clamped log-normal fit by moment matching on
/// `ln(degree)` over the nonzero rows; the empty-row fraction, min/max
/// clamps and column-popularity skew are measured directly. Values are
/// generated from `value_dist` (shape statistics do not constrain them).
///
/// # Panics
///
/// Panics if `m` has no rows.
pub fn fit_profile<T: Real>(
    m: &CsrMatrix<T>,
    name: &'static str,
    value_dist: ValueDist,
) -> DatasetProfile {
    assert!(m.rows() > 0, "cannot fit a profile to an empty matrix");
    let degrees: Vec<usize> = (0..m.rows()).map(|r| m.row_degree(r)).collect();
    let nonzero: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d > 0)
        .map(|&d| (d as f64).ln())
        .collect();
    let p_empty = 1.0 - nonzero.len() as f64 / m.rows() as f64;
    let (mu, sigma) = if nonzero.is_empty() {
        (0.0, 0.5)
    } else {
        let mu = nonzero.iter().sum::<f64>() / nonzero.len() as f64;
        let var = nonzero.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / nonzero.len() as f64;
        (mu, var.sqrt().max(0.05))
    };
    let min = degrees
        .iter()
        .copied()
        .filter(|&d| d > 0)
        .min()
        .unwrap_or(1);
    let max = degrees.iter().copied().max().unwrap_or(1).max(1);

    // Column-popularity skew: compare the nonzero mass of the most
    // popular decile of columns against a uniform spread. Under the
    // generator's `u^skew` law, the top decile carries `10^(-1/skew)` of
    // the mass, so skew = 1 / log10(1 / top_decile_share).
    let mut col_counts = vec![0u32; m.cols().max(1)];
    for &c in m.indices() {
        col_counts[c as usize] += 1;
    }
    col_counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = col_counts.iter().map(|&c| c as u64).sum();
    let top_decile: u64 = col_counts
        .iter()
        .take(m.cols().div_ceil(10).max(1))
        .map(|&c| c as u64)
        .sum();
    let share = if total == 0 {
        0.1
    } else {
        (top_decile as f64 / total as f64).clamp(0.1, 0.999)
    };
    let col_skew = if share <= 0.1 + 1e-9 {
        1.0
    } else {
        (1.0 / (1.0 / share).log10()).clamp(1.0, 10.0)
    };

    DatasetProfile {
        name,
        rows: m.rows(),
        cols: m.cols(),
        degree: DegreeDist {
            mu,
            sigma,
            min: if p_empty > 0.0 { 1 } else { min },
            max,
            p_empty,
        },
        values: value_dist,
        col_skew,
        paper: PaperStats {
            size: (m.rows(), m.cols()),
            density: m.density(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: max,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::DegreeStats;

    #[test]
    fn refit_recovers_generated_statistics() {
        // Generate from a known profile, fit, regenerate, compare stats.
        let original = DatasetProfile::nytimes_bow().scaled(0.005);
        let m = original.generate(11);
        let fitted = fit_profile(&m, "refit", ValueDist::TfIdf);
        assert_eq!(fitted.rows, m.rows());
        assert_eq!(fitted.cols, m.cols());
        let replica = fitted.generate(12);
        let s0 = DegreeStats::of(&m);
        let s1 = DegreeStats::of(&replica);
        // Density within 30%, mean degree within 30%.
        assert!(
            (s1.density / s0.density - 1.0).abs() < 0.3,
            "density {} vs {}",
            s1.density,
            s0.density
        );
        assert!(
            (s1.mean_degree / s0.mean_degree.max(1e-9) - 1.0).abs() < 0.3,
            "mean degree {} vs {}",
            s1.mean_degree,
            s0.mean_degree
        );
    }

    #[test]
    fn fit_measures_empty_fraction() {
        // 6 of 10 rows empty.
        let trips: Vec<(u32, u32, f32)> =
            (0..4u32).flat_map(|r| [(r, 0, 1.0), (r, 3, 1.0)]).collect();
        let m = sparse::CsrMatrix::from_triplets(10, 5, &trips).expect("valid");
        let p = fit_profile(&m, "sparse-rows", ValueDist::TfIdf);
        assert!((p.degree.p_empty - 0.6).abs() < 1e-9);
        assert_eq!(p.degree.max, 2);
    }

    #[test]
    fn fit_detects_column_skew() {
        // All nonzeros in one column → extreme skew; uniform spread → ~1.
        let skewed: Vec<(u32, u32, f32)> = (0..50u32).map(|r| (r, 0, 1.0)).collect();
        let ms = sparse::CsrMatrix::from_triplets(50, 100, &skewed).expect("valid");
        let ps = fit_profile(&ms, "skewed", ValueDist::TfIdf);
        let uniform: Vec<(u32, u32, f32)> = (0..50u32).map(|r| (r, r * 2, 1.0)).collect();
        let mu = sparse::CsrMatrix::from_triplets(50, 100, &uniform).expect("valid");
        let pu = fit_profile(&mu, "uniform", ValueDist::TfIdf);
        assert!(
            ps.col_skew > 2.0 * pu.col_skew,
            "{} vs {}",
            ps.col_skew,
            pu.col_skew
        );
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn zero_row_matrix_is_rejected() {
        let m = sparse::CsrMatrix::<f32>::zeros(0, 4);
        fit_profile(&m, "nope", ValueDist::TfIdf);
    }
}
