//! Degree, column-popularity and value distributions for the synthetic
//! dataset generators.

use rand::Rng;

/// A clamped log-normal row-degree distribution.
///
/// Log-normals fit all four of the paper's datasets well: a tight one for
/// SEC EDGAR's tiny n-gram rows, a heavy-tailed one for MovieLens power
/// users, a high-mean one for scRNA, and a high-variance one for the NY
/// Times corpus (Figure 1's CDFs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeDist {
    /// Mean of `ln(degree)`.
    pub mu: f64,
    /// Standard deviation of `ln(degree)`.
    pub sigma: f64,
    /// Lower clamp (Table 2's "Min Deg").
    pub min: usize,
    /// Upper clamp (Table 2's "Max Deg").
    pub max: usize,
    /// Probability of an entirely empty row (several of the paper's
    /// datasets have Min Deg = 0).
    pub p_empty: f64,
}

impl DegreeDist {
    /// Samples one row degree.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        if self.p_empty > 0.0 && rng.gen::<f64>() < self.p_empty {
            return 0;
        }
        let d = (self.mu + self.sigma * sample_standard_normal(rng)).exp();
        (d.round() as usize).clamp(self.min.max(1), self.max.max(1))
    }

    /// Analytic mean of the unclamped log-normal (for calibration
    /// checks).
    pub fn unclamped_mean(&self) -> f64 {
        (1.0 - self.p_empty) * (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Standard normal via Box–Muller (the `rand` crate alone provides only
/// uniform sources).
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Cell-value distributions per dataset family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueDist {
    /// Star ratings in half-point steps 0.5–5.0 (MovieLens).
    Ratings,
    /// Log-normal TF-IDF weights in roughly (0, 1] (NY Times, EDGAR).
    TfIdf,
    /// Positive expression counts (scRNA).
    Counts,
}

impl ValueDist {
    /// Samples one nonzero cell value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        match self {
            ValueDist::Ratings => {
                // Mode around 3.5–4.0 stars.
                let star = 1.0 + 7.0 * rng.gen::<f64>().powf(0.6);
                ((star.round() / 2.0) as f32).clamp(0.5, 5.0)
            }
            ValueDist::TfIdf => {
                ((-2.5 + 0.8 * sample_standard_normal(rng)).exp() as f32).clamp(1e-4, 10.0)
            }
            ValueDist::Counts => (1.0
                + (0.5 + 1.2 * sample_standard_normal(rng)).exp().round() as f32)
                .clamp(1.0, 10_000.0),
        }
    }
}

/// Samples a column index with power-law popularity: `skew = 1` is
/// uniform; larger values concentrate mass on low-index ("popular")
/// columns, the shape ratings and word corpora exhibit.
pub fn sample_column<R: Rng>(rng: &mut R, cols: usize, skew: f64) -> u32 {
    let u: f64 = rng.gen();
    let x = u.powf(skew);
    ((x * cols as f64) as usize).min(cols - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_samples_respect_clamps() {
        let d = DegreeDist {
            mu: 3.0,
            sigma: 1.0,
            min: 5,
            max: 50,
            p_empty: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((5..=50).contains(&s), "degree {s} out of clamp");
        }
    }

    #[test]
    fn empty_probability_produces_empty_rows() {
        let d = DegreeDist {
            mu: 2.0,
            sigma: 0.5,
            min: 1,
            max: 100,
            p_empty: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let empties = (0..2000).filter(|_| d.sample(&mut rng) == 0).count();
        assert!((400..800).contains(&empties), "got {empties} empty of 2000");
    }

    #[test]
    fn sample_mean_tracks_analytic_mean() {
        let d = DegreeDist {
            mu: 4.0,
            sigma: 0.5,
            min: 1,
            max: 100_000,
            p_empty: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let want = d.unclamped_mean();
        assert!(
            (mean - want).abs() / want < 0.05,
            "sampled {mean}, analytic {want}"
        );
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn ratings_are_half_steps_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let v = ValueDist::Ratings.sample(&mut rng);
            assert!((0.5..=5.0).contains(&v));
            assert!((v * 2.0).fract() == 0.0, "{v} is not a half step");
        }
    }

    #[test]
    fn tfidf_and_counts_are_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..500 {
            assert!(ValueDist::TfIdf.sample(&mut rng) > 0.0);
            assert!(ValueDist::Counts.sample(&mut rng) >= 1.0);
        }
    }

    #[test]
    fn column_skew_concentrates_low_indices() {
        let mut rng = StdRng::seed_from_u64(7);
        let cols = 10_000;
        let n = 20_000;
        let uniform_low = (0..n)
            .filter(|_| sample_column(&mut rng, cols, 1.0) < 1000)
            .count();
        let skewed_low = (0..n)
            .filter(|_| sample_column(&mut rng, cols, 3.0) < 1000)
            .count();
        assert!(
            skewed_low > uniform_low * 3,
            "skewed {skewed_low} vs uniform {uniform_low}"
        );
        // All samples stay in range.
        for _ in 0..100 {
            assert!((sample_column(&mut rng, cols, 2.0) as usize) < cols);
        }
    }
}
