//! Synthetic replicas of the paper's four evaluation datasets (§4.1).
//!
//! The paper benchmarks on MovieLens-Large ratings, SEC EDGAR company
//! name n-grams, a human-lung single-cell RNA atlas, and the NY Times
//! bag-of-words corpus. Those exact files are external data we do not
//! ship; what the evaluation actually depends on is their *shape*:
//! matrix dimensions, density, and the row-degree distribution (Table 2
//! and Figure 1). Each [`DatasetProfile`] reproduces those statistics
//! with a seeded generator, and can be scaled down so the full benchmark
//! suite runs on a laptop-class simulator in minutes.
//!
//! # Example
//!
//! ```
//! use datasets::DatasetProfile;
//! let profile = DatasetProfile::movielens().scaled(0.01);
//! let m = profile.generate(42);
//! assert_eq!(m.rows(), profile.rows);
//! // Density lands near the Table 2 target (0.05%).
//! assert!(m.density() > 0.0001 && m.density() < 0.002);
//! ```

#![deny(missing_docs)]

pub mod distributions;
pub mod fit;
pub mod profiles;

pub use distributions::{DegreeDist, ValueDist};
pub use fit::fit_profile;
pub use profiles::{all_profiles, DatasetProfile, PaperStats};
