//! The four Table 2 dataset profiles and the generator.

use crate::distributions::{sample_column, DegreeDist, ValueDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::{CsrBuilder, CsrMatrix, Idx};

/// The Table 2 row a profile is calibrated against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// `(rows, cols)` as published.
    pub size: (usize, usize),
    /// Published density (fraction, not percent).
    pub density: f64,
    /// Published minimum row degree.
    pub min_degree: usize,
    /// Published maximum row degree.
    pub max_degree: usize,
}

/// A synthetic dataset recipe matched to one of the paper's benchmark
/// datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Rows to generate.
    pub rows: usize,
    /// Columns (dimensionality).
    pub cols: usize,
    /// Row-degree distribution.
    pub degree: DegreeDist,
    /// Nonzero value distribution.
    pub values: ValueDist,
    /// Column-popularity skew (1 = uniform).
    pub col_skew: f64,
    /// The published statistics this profile targets (at full scale).
    pub paper: PaperStats,
}

impl DatasetProfile {
    /// *MovieLens Large* (§4.1): "ratings given by 283k users for 194k
    /// movies", density 0.05 %, degrees 0–24 K with a heavy tail (88 % of
    /// rows under 200, Figure 1).
    pub fn movielens() -> Self {
        Self {
            name: "MovieLens",
            rows: 283_000,
            cols: 194_000,
            degree: DegreeDist {
                mu: 45f64.ln(),
                sigma: 1.3,
                min: 1,
                max: 24_000,
                p_empty: 0.02,
            },
            values: ValueDist::Ratings,
            col_skew: 3.0,
            paper: PaperStats {
                size: (283_000, 194_000),
                density: 0.0005,
                min_degree: 0,
                max_degree: 24_000,
            },
        }
    }

    /// *SEC EDGAR* company-name n-grams (§4.1): (663K, 858K), density
    /// 0.0007 %, max degree 51, 99 % of rows under 10 nonzeros.
    pub fn sec_edgar() -> Self {
        Self {
            name: "SEC Edgar",
            rows: 663_000,
            cols: 858_000,
            degree: DegreeDist {
                mu: 5f64.ln(),
                sigma: 0.35,
                min: 1,
                max: 51,
                p_empty: 0.01,
            },
            values: ValueDist::TfIdf,
            col_skew: 2.0,
            paper: PaperStats {
                size: (663_000, 858_000),
                density: 0.000_007,
                min_degree: 0,
                max_degree: 51,
            },
        }
    }

    /// SEC EDGAR at a specific n-gram size. §4.3 distinguishes the
    /// variants: "The unigram and bigram dataset ranged from 5% to 25%
    /// output density ... while trigrams ranged from 24% to 43%".
    /// Smaller `n` means a much smaller vocabulary (more collisions,
    /// denser products) and slightly fewer grams per name.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is 1, 2 or 3.
    pub fn sec_edgar_ngram(n: usize) -> Self {
        let base = Self::sec_edgar();
        let (cols, mu, max, skew, name) = match n {
            1 => (64, 4.0f64.ln(), 26, 1.4, "SEC Edgar 1-gram"),
            2 => (4_000, 4.5f64.ln(), 40, 1.7, "SEC Edgar 2-gram"),
            3 => (
                858_000,
                base.degree.mu,
                base.degree.max,
                base.col_skew,
                "SEC Edgar 3-gram",
            ),
            _ => panic!("n-gram size must be 1, 2 or 3"),
        };
        Self {
            name,
            rows: base.rows,
            cols,
            degree: DegreeDist {
                mu,
                sigma: base.degree.sigma,
                min: base.degree.min,
                max,
                p_empty: base.degree.p_empty,
            },
            values: base.values,
            col_skew: skew,
            paper: base.paper,
        }
    }

    /// *scRNA* human-lung cell atlas (§4.1): "70k cells and gene
    /// expressions for 26k genes", density 7 %, degrees 501–9.6 K (98 %
    /// under 5 K).
    pub fn scrna() -> Self {
        Self {
            name: "scRNA",
            rows: 66_000,
            cols: 26_000,
            degree: DegreeDist {
                mu: 1500f64.ln(),
                sigma: 0.55,
                min: 501,
                max: 9_600,
                p_empty: 0.0,
            },
            values: ValueDist::Counts,
            col_skew: 1.5,
            paper: PaperStats {
                size: (66_000, 26_000),
                density: 0.07,
                min_degree: 501,
                max_degree: 9_600,
            },
        }
    }

    /// *NY Times Bag of Words* (§4.1): (300K, 102K), density 0.2 %, max
    /// degree 2 K, "the highest variance, with 99% of the rows having
    /// degree less than 1k".
    pub fn nytimes_bow() -> Self {
        Self {
            name: "NY Times BoW",
            rows: 300_000,
            cols: 102_000,
            degree: DegreeDist {
                mu: 120f64.ln(),
                sigma: 1.0,
                min: 1,
                max: 2_000,
                p_empty: 0.01,
            },
            values: ValueDist::TfIdf,
            col_skew: 2.5,
            paper: PaperStats {
                size: (300_000, 102_000),
                density: 0.002,
                min_degree: 0,
                max_degree: 2_000,
            },
        }
    }

    /// Scales the profile down by `factor` (rows, columns and degrees all
    /// shrink together, preserving density and the CDF's shape).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(&self, factor: f64) -> Self {
        self.scaled_with(factor, factor)
    }

    /// Scales dimensions by `dim_factor` and row degrees by
    /// `degree_factor` independently.
    ///
    /// Uniform scaling preserves density and the degree-CDF shape but
    /// shrinks the absolute *degree mass*, which governs how often row
    /// pairs intersect — the quantity behind §4.3's output-density
    /// observations. Harnesses that reproduce those observations scale
    /// degrees less aggressively (e.g. `degree_factor = dim_factor.sqrt()`).
    ///
    /// # Panics
    ///
    /// Panics unless both factors are in `(0, 1]`.
    pub fn scaled_with(&self, dim_factor: f64, degree_factor: f64) -> Self {
        assert!(
            dim_factor > 0.0 && dim_factor <= 1.0,
            "factor must be in (0, 1]"
        );
        assert!(
            degree_factor > 0.0 && degree_factor <= 1.0,
            "factor must be in (0, 1]"
        );
        let scale_deg = |d: usize| ((d as f64 * degree_factor).round() as usize).max(1);
        Self {
            name: self.name,
            rows: ((self.rows as f64 * dim_factor).round() as usize).max(8),
            cols: ((self.cols as f64 * dim_factor).round() as usize).max(8),
            degree: DegreeDist {
                mu: self.degree.mu + degree_factor.ln(),
                sigma: self.degree.sigma,
                min: if self.degree.min <= 1 {
                    self.degree.min
                } else {
                    scale_deg(self.degree.min)
                },
                max: scale_deg(self.degree.max),
                p_empty: self.degree.p_empty,
            },
            values: self.values,
            col_skew: self.col_skew,
            paper: self.paper,
        }
    }

    /// Generates the matrix with a deterministic seed.
    pub fn generate(&self, seed: u64) -> CsrMatrix<f32> {
        let mut rng = StdRng::seed_from_u64(seed ^ self.name.len() as u64);
        let mut builder = CsrBuilder::<f32>::with_capacity(
            self.rows,
            self.cols,
            self.rows * self.degree.unclamped_mean().ceil() as usize,
        );
        let mut row_cols: Vec<Idx> = Vec::new();
        for r in 0..self.rows {
            let degree = self.degree.sample(&mut rng).min(self.cols);
            row_cols.clear();
            if degree * 3 >= self.cols {
                // Dense-ish row: reservoir-style pick from all columns.
                row_cols.extend(0..self.cols as Idx);
                for i in (1..row_cols.len()).rev() {
                    row_cols.swap(i, rng.gen_range(0..=i));
                }
                row_cols.truncate(degree);
            } else {
                let mut seen = std::collections::HashSet::with_capacity(degree * 2);
                while seen.len() < degree {
                    seen.insert(sample_column(&mut rng, self.cols, self.col_skew));
                }
                row_cols.extend(seen);
            }
            // Sort before assigning values: HashSet iteration order is
            // nondeterministic across processes, and values must pair
            // with columns reproducibly for a given seed.
            row_cols.sort_unstable();
            for &c in row_cols.iter() {
                builder = builder
                    .push(r as Idx, c, self.values.sample(&mut rng))
                    .expect("generator stays in bounds");
            }
        }
        builder.build().expect("generator produces valid triplets")
    }
}

/// The four paper datasets, in Table 2 order.
pub fn all_profiles() -> [DatasetProfile; 4] {
    [
        DatasetProfile::movielens(),
        DatasetProfile::sec_edgar(),
        DatasetProfile::scrna(),
        DatasetProfile::nytimes_bow(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::DegreeStats;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = DatasetProfile::nytimes_bow().scaled(0.002);
        let a = p.generate(7);
        let b = p.generate(7);
        let c = p.generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_movielens_matches_table2_statistics() {
        let p = DatasetProfile::movielens().scaled(0.01);
        let m = p.generate(1);
        let s = DegreeStats::of(&m);
        // Density target 0.05% — accept a 2x band.
        assert!(
            s.density > 0.00025 && s.density < 0.001,
            "density {}",
            s.density
        );
        assert!(s.max_degree <= 240, "max degree {}", s.max_degree);
        assert_eq!(s.min_degree, 0, "MovieLens has empty rows");
    }

    #[test]
    fn scaled_edgar_has_tiny_rows() {
        let p = DatasetProfile::sec_edgar().scaled(0.01);
        let m = p.generate(2);
        let s = DegreeStats::of(&m);
        // At 1% scale the 51-degree clamp becomes ~1: every row tiny.
        assert!(s.max_degree <= 2, "max degree {}", s.max_degree);
        let cdf = sparse::degree_cdf(&m);
        assert!(cdf[99] <= 2, "99th percentile degree {}", cdf[99]);
    }

    #[test]
    fn scaled_scrna_is_dense_with_high_min_degree() {
        let p = DatasetProfile::scrna().scaled(0.01);
        let m = p.generate(3);
        let s = DegreeStats::of(&m);
        assert!(s.density > 0.03, "density {}", s.density);
        assert!(s.min_degree >= 4, "min degree {}", s.min_degree);
    }

    #[test]
    fn nytimes_has_the_highest_degree_variance() {
        // Figure 1's qualitative claim, checked on the scaled replicas:
        // NYT's degree spread (p99/p50) exceeds the other profiles'.
        let spread = |p: &DatasetProfile| {
            let m = p.scaled(0.005).generate(4);
            let cdf = sparse::degree_cdf(&m);
            cdf[99] as f64 / cdf[50].max(1) as f64
        };
        let nyt = spread(&DatasetProfile::nytimes_bow());
        assert!(nyt > spread(&DatasetProfile::sec_edgar()));
        assert!(nyt > spread(&DatasetProfile::scrna()));
    }

    #[test]
    fn full_scale_profiles_report_paper_stats() {
        for p in all_profiles() {
            assert_eq!(p.paper.size, (p.rows, p.cols), "{}", p.name);
            assert!(p.paper.density > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn zero_scale_is_rejected() {
        DatasetProfile::movielens().scaled(0.0);
    }

    #[test]
    fn edgar_ngram_variants_shrink_vocabulary_with_n() {
        let uni = DatasetProfile::sec_edgar_ngram(1);
        let bi = DatasetProfile::sec_edgar_ngram(2);
        let tri = DatasetProfile::sec_edgar_ngram(3);
        assert!(uni.cols < bi.cols && bi.cols < tri.cols);
        assert_eq!(tri.cols, DatasetProfile::sec_edgar().cols);
        // Denser products for smaller vocabularies: generated unigram
        // matrices are far denser than trigram ones.
        let u = uni.scaled_with(0.01, 1.0).generate(3);
        let t = tri.scaled_with(0.01, 1.0).generate(3);
        assert!(u.density() > 20.0 * t.density());
    }

    #[test]
    #[should_panic(expected = "n-gram size must be 1, 2 or 3")]
    fn edgar_ngram_rejects_bad_n() {
        DatasetProfile::sec_edgar_ngram(4);
    }
}
