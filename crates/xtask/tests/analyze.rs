//! Fixture suite for the static analyzer.
//!
//! Each rule gets inline-source fixtures — true positive, true
//! negative, allow-region opt-out, and region-hygiene cases — driven
//! through the same public API CI gates on, plus end-to-end runs of
//! [`xtask::analyze::analyze_root`] over synthetic workspace trees to
//! exercise the scan set, the `diag.v1` writer, and the suppression
//! baseline. The final test runs the analyzer over *this* repository
//! against the committed baseline, so `cargo test` enforces the same
//! zero-fresh-findings contract as the CI `checks` job.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::analyze::baseline::{write_baseline, Baseline};
use xtask::analyze::diag::{validate_diag, DiagReport, Diagnostic, Severity};
use xtask::analyze::rules::{run_rules, run_span_rules, RULES};
use xtask::analyze::{analyze_root, SCAN_ROOTS, SPAN_SCAN_ROOTS};

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------------
// Seeded violations the old lint_kernels passes: one per new rule.
// lint_kernels matched single lines with no notion of enclosing
// branches, launches, or region usage, so none of these constructs
// appear on any of its match lists.
// ---------------------------------------------------------------------

#[test]
fn barrier_divergence_seeded_violation() {
    let seeded = "\
block.run_warps(|w| {
    if w.lane_id() == 0 {
        block.sync();
    }
});
";
    let out = run_rules("fixture.rs", seeded);
    assert_eq!(rules_of(&out), ["barrier-divergence"]);
    assert_eq!((out[0].line, out[0].col), (3, 15));

    // True negative: a uniform condition.
    let uniform = "if cols > 64 {\n    block.sync();\n}\n";
    assert!(run_rules("fixture.rs", uniform).is_empty());

    // Opt-out.
    let allowed = "\
// barrier-lint: begin-allow(uniform-bound): the lane bound is identical on every lane of the block
if lane_limit == WARP_SIZE {
    block.sync();
}
// barrier-lint: end-allow
";
    assert!(run_rules("fixture.rs", allowed).is_empty());
}

#[test]
fn nondet_reduction_seeded_violation() {
    let seeded = "\
block.run_warps(|w| {
    out.host_set(w.warp_id, partial);
});
";
    let out = run_rules("fixture.rs", seeded);
    assert_eq!(rules_of(&out), ["nondet-reduction"]);

    // True negatives: read-only staging inside the launch, and writes
    // outside it.
    let legal = "\
let seed = buf.host_get(0);
block.run_warps(|w| {
    let v = buf.host_get(i);
    w.global_atomic(&out, &idx, &v, add);
});
out.host_set(0, total);
";
    assert!(run_rules("fixture.rs", legal).is_empty());

    // Opt-out.
    let allowed = "\
block.run_warps(|w| {
    // nondet-lint: begin-allow(disjoint-slots): each warp owns exactly slot warp_id; no write overlaps
    out.host_set(w.warp_id, partial);
    // nondet-lint: end-allow
});
";
    assert!(run_rules("fixture.rs", allowed).is_empty());
}

#[test]
fn unguarded_fallible_seeded_violation() {
    let seeded = "\
block.run_warps(|w| {
    table.insert_warp(w, &keys, &vals);
});
";
    let out = run_rules("fixture.rs", seeded);
    assert_eq!(rules_of(&out), ["unguarded-fallible"]);

    // True negative: the launch consults the fault ledger.
    let guarded = "\
block.run_warps(|w| {
    table.insert_warp(w, &keys, &vals);
    if w.fault_pending() {
        return;
    }
});
";
    assert!(run_rules("fixture.rs", guarded).is_empty());

    // Opt-out.
    let allowed = "\
block.run_warps(|w| {
    // fallible-lint: begin-allow(preflight-sized): capacity is 2x the worst-case batch, proven upstream
    table.insert_warp(w, &keys, &vals);
    // fallible-lint: end-allow
});
";
    assert!(run_rules("fixture.rs", allowed).is_empty());
}

#[test]
fn stale_allow_seeded_violation() {
    // The old lint never checked whether a region still suppressed
    // anything, so exemptions outlived the code they excused.
    let seeded = "\
// smem-lint: begin-allow(leftover): excused a raw read that has since been rewritten
w.issue(1);
// smem-lint: end-allow
";
    let out = run_rules("fixture.rs", seeded);
    assert_eq!(rules_of(&out), ["stale-allow"]);

    // True negative: the region still earns its keep.
    let live = "\
// smem-lint: begin-allow(serialized-emulation): cost charged in aggregate by the probe below
let v = arr.read(0);
// smem-lint: end-allow
";
    assert!(run_rules("fixture.rs", live).is_empty());

    // Unclosed region: reported under the region's own rule.
    let unclosed = "// smem-lint: begin-allow(x): a perfectly good reason\narr.read(0);\n";
    let out = run_rules("fixture.rs", unclosed);
    assert_eq!(rules_of(&out), ["uncosted-smem"]);
    assert!(out[0].message.contains("never closed"));
}

#[test]
fn cfg_test_scoping_seeded_violation() {
    // The old lint skipped everything from the first #[cfg(test)] to
    // EOF; the scope tracker confines the exemption to the braced
    // module, so the trailing unwrap is caught.
    let seeded = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn also_live(y: Option<u32>) -> u32 { y.unwrap() }
";
    let out = run_rules("fixture.rs", seeded);
    assert_eq!(rules_of(&out), ["panic-path"]);
    assert_eq!(out[0].line, 6);
}

#[test]
fn every_rule_is_cataloged() {
    let names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        [
            "uncosted-smem",
            "counters-bypass",
            "unranged-phase",
            "panic-path",
            "barrier-divergence",
            "nondet-reduction",
            "unguarded-fallible",
            "stale-allow",
            "dropped-span",
        ]
    );
    assert!(RULES.iter().all(|r| !r.summary.is_empty()));
}

// ---------------------------------------------------------------------
// dropped-span (deny severity, serving scan roots).
// ---------------------------------------------------------------------

#[test]
fn dropped_span_seeded_violation() {
    // True positive: a serving file that opens request spans but never
    // records a terminal event — every span it opens leaks open.
    let seeded = "\
fn admit(traces: &mut RequestTraces, r: &Request) {
    traces.begin_request(r.id, r.dataset, r.arrival_s);
    traces.push_event(r.id, t, SpanEvent::CacheHit);
}
";
    let out = run_span_rules("fixture.rs", seeded);
    assert_eq!(rules_of(&out), ["dropped-span"]);
    assert_eq!(out[0].severity, Severity::Deny);
    assert_eq!(out[0].line, 2);
    assert!(out[0].message.contains("terminal"));
}

#[test]
fn dropped_span_true_negatives() {
    // Served and shed paths both terminate: clean.
    let terminated = "\
traces.begin_request(r.id, r.dataset, r.arrival_s);
if admitted {
    traces.finish_request(r.id, t, t - r.arrival_s);
} else {
    traces.reject_request(r.id, t, backlog);
}
";
    assert!(run_span_rules("fixture.rs", terminated).is_empty());

    // A file that never opens spans owes no terminal event — even if it
    // pushes intermediate events on spans opened elsewhere.
    let events_only = "traces.push_event(r.id, t, SpanEvent::Merge);\n";
    assert!(run_span_rules("fixture.rs", events_only).is_empty());

    // Definition sites are not method calls: the span module itself,
    // which defines begin_request but calls no terminal method, passes.
    let definitions = "\
pub fn begin_request(&mut self, id: u64, dataset: usize, arrival_s: f64) {
    self.spans.push(RequestSpan::new(id, dataset, arrival_s));
}
";
    assert!(run_span_rules("fixture.rs", definitions).is_empty());

    // Test code is exempt, as everywhere else in the analyzer.
    let in_test = "\
#[cfg(test)]
mod tests {
    fn t(traces: &mut RequestTraces) {
        traces.begin_request(1, 0, 0.0);
    }
}
";
    assert!(run_span_rules("fixture.rs", in_test).is_empty());

    // The kernel rules never fire on serving-path files: host-side
    // constructs that would be deny findings under run_rules are out of
    // scope for the span scan.
    let host_code = "let v = opt.unwrap();\narr.write(0, v);\n";
    assert!(run_span_rules("fixture.rs", host_code).is_empty());
}

// ---------------------------------------------------------------------
// End-to-end over a synthetic workspace tree.
// ---------------------------------------------------------------------

/// Builds a throwaway workspace containing one kernel file per entry
/// of `files` and returns its root.
fn fixture_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir()
        .join("xtask_analyze_fixture")
        .join(name);
    fs::remove_dir_all(&root).ok();
    for (rel, text) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, text).expect("write fixture");
    }
    root
}

#[test]
fn analyze_root_scans_kernels_and_gpu_sim() {
    let root = fixture_tree(
        "scan_set",
        &[
            ("crates/kernels/src/a.rs", "arr.write(0, v);\n"),
            ("crates/gpu-sim/src/prims/b.rs", "x.unwrap();\n"),
            (
                "crates/gpu-sim/src/collections/c.rs",
                "let v = t.read(0);\n",
            ),
            // Outside the scan set: must not be visited.
            ("crates/gpu-sim/src/device.rs", "zzz.unwrap();\n"),
        ],
    );
    let analysis = analyze_root(&root).expect("analyzes");
    assert_eq!(analysis.files_scanned, 3);
    let files: Vec<&str> = analysis.findings.iter().map(|d| d.file.as_str()).collect();
    assert_eq!(
        files,
        [
            "crates/gpu-sim/src/collections/c.rs",
            "crates/gpu-sim/src/prims/b.rs",
            "crates/kernels/src/a.rs",
        ]
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn analyze_root_runs_only_span_rules_over_serving_roots() {
    let root = fixture_tree(
        "span_scan_set",
        &[
            // Kernel scan set must be non-empty for analyze_root.
            ("crates/kernels/src/a.rs", "w.issue(1);\n"),
            // Opens spans, never terminates: one dropped-span deny
            // finding. The unwrap must NOT be flagged — kernel rules
            // are out of scope on serving roots.
            (
                "crates/serve/src/leaky.rs",
                "let q = opt.unwrap();\ntraces.begin_request(id, 0, t);\n",
            ),
            // Terminates its spans: clean.
            (
                "crates/neighbors/src/ok.rs",
                "traces.begin_request(id, 0, t);\ntraces.finish_request(id, t, 0.0);\n",
            ),
        ],
    );
    let analysis = analyze_root(&root).expect("analyzes");
    assert_eq!(analysis.files_scanned, 3);
    assert_eq!(rules_of(&analysis.findings), ["dropped-span"]);
    assert_eq!(analysis.findings[0].file, "crates/serve/src/leaky.rs");
    assert_eq!(analysis.findings[0].severity, Severity::Deny);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn empty_scan_set_is_an_error_not_a_pass() {
    let root = fixture_tree("empty", &[("README.md", "nothing to scan\n")]);
    assert!(analyze_root(&root).is_err());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn baseline_round_trip_gates_fresh_findings_only() {
    let root = fixture_tree(
        "baseline_rt",
        &[("crates/kernels/src/k.rs", "let a = arr.read(0);\n")],
    );
    let analysis = analyze_root(&root).expect("analyzes");
    assert_eq!(rules_of(&analysis.findings), ["uncosted-smem"]);

    // Accept the current state.
    let bpath = root.join("ANALYZE_baseline.json");
    let bpath = bpath.to_str().expect("utf8");
    write_baseline(bpath, &analysis.findings, analysis.files_scanned);
    validate_diag(&fs::read_to_string(bpath).expect("read")).expect("baseline is diag.v1");

    // Same tree: fully baselined, nothing stale.
    let mut again = analyze_root(&root).expect("analyzes").findings;
    let stale = Baseline::load(bpath).expect("loads").apply(&mut again);
    assert!(stale.is_empty());
    assert!(again.iter().all(|d| d.baselined));

    // New violation: fresh. Old one moves down a line: still baselined
    // (fingerprints hash content, not position).
    fs::write(
        root.join("crates/kernels/src/k.rs"),
        "let b = arr.write(1, v);\n\nlet a = arr.read(0);\n",
    )
    .expect("rewrite");
    let mut third = analyze_root(&root).expect("analyzes").findings;
    let stale = Baseline::load(bpath).expect("loads").apply(&mut third);
    assert!(stale.is_empty());
    let fresh: Vec<&Diagnostic> = third.iter().filter(|d| !d.baselined).collect();
    assert_eq!(fresh.len(), 1);
    assert_eq!(fresh[0].rule, "uncosted-smem");
    assert_eq!(fresh[0].line, 1);

    // Fix the old violation: its baseline entry goes stale.
    fs::write(root.join("crates/kernels/src/k.rs"), "w.issue(1);\n").expect("rewrite");
    let mut fourth = analyze_root(&root).expect("analyzes").findings;
    let stale = Baseline::load(bpath).expect("loads").apply(&mut fourth);
    assert!(fourth.is_empty());
    assert_eq!(stale.len(), 1);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn diag_report_render_validates() {
    let root = fixture_tree(
        "render",
        &[(
            "crates/kernels/src/k.rs",
            "panic!(\"boom \\\"quoted\\\"\");\n",
        )],
    );
    let analysis = analyze_root(&root).expect("analyzes");
    let report = DiagReport {
        name: "analyze".to_string(),
        files_scanned: analysis.files_scanned,
        stale_baseline: 0,
        findings: analysis.findings,
    };
    validate_diag(&report.to_json()).expect("self-consistent");
    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// The live repository must stay clean against its committed baseline.
// ---------------------------------------------------------------------

#[test]
fn live_repo_has_no_fresh_findings_and_no_stale_baseline() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    for sub in SCAN_ROOTS.iter().chain(&SPAN_SCAN_ROOTS) {
        assert!(root.join(sub).is_dir(), "scan root {sub} missing");
    }
    let mut analysis = analyze_root(root).expect("live repo analyzes");
    let bpath = root.join("experiments_output/ANALYZE_baseline.json");
    let stale = Baseline::load(bpath.to_str().expect("utf8"))
        .expect("committed baseline loads")
        .apply(&mut analysis.findings);
    let fresh: Vec<String> = analysis
        .findings
        .iter()
        .filter(|d| !d.baselined)
        .map(|d| format!("{d}"))
        .collect();
    assert!(fresh.is_empty(), "fresh findings:\n{}", fresh.join("\n"));
    assert!(
        stale.is_empty(),
        "stale baseline entries: {:?}",
        stale.iter().map(|s| &s.file).collect::<Vec<_>>()
    );
}
