//! `compare_bench` — the CI perf-regression gate.
//!
//! The simulator's counters and roofline seconds are fully
//! deterministic, so perf can be gated without flake: a committed
//! baseline (`experiments_output/BENCH_baseline.json`) records every
//! metric row of the `counters_report` and `shard_scaling` harnesses,
//! and this tool diffs a fresh run against it. Any value drifting by
//! more than the tolerance — in either direction, since an unexplained
//! *improvement* means the baseline is stale — fails the gate. A PR
//! that intentionally changes performance refreshes the baseline with
//! `scripts/update_bench_baseline.sh` and commits the diff.
//!
//! Compare mode (the CI `perf-gate` job):
//!
//! ```text
//! cargo run -p xtask --bin compare_bench -- \
//!     --baseline experiments_output/BENCH_baseline.json \
//!     [--tolerance 0.10] fresh_counters.json fresh_shard.json
//! ```
//!
//! Baseline-write mode (used by the refresh script):
//!
//! ```text
//! cargo run -p xtask --bin compare_bench -- \
//!     --write-baseline experiments_output/BENCH_baseline.json \
//!     fresh_counters.json fresh_shard.json
//! ```
//!
//! The baseline is itself a `bench.v1` document named `bench_baseline`;
//! each row carries a `report` label naming its source harness, so one
//! file gates any number of harnesses. Rows are matched on their full
//! label set (plus occurrence index for safety); a baseline row with no
//! match in the fresh run fails the gate, while brand-new rows in the
//! fresh run are reported but allowed (the next refresh absorbs them).

use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

use bench::{validate_report, Json};

/// One metric row, flattened: sorted labels (including the injected
/// `report` label) and its numeric values.
struct Row {
    labels: Vec<(String, String)>,
    values: Vec<(String, f64)>,
}

impl Row {
    /// Stable identity of the row: the full label set, serialized.
    fn key(&self) -> String {
        let parts: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        parts.join(",")
    }
}

/// Loads a `bench.v1` report and flattens its rows, tagging each with a
/// `report=<name>` label (already present when re-reading a baseline).
fn load_rows(path: &str) -> Result<Vec<Row>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    validate_report(&text).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let mut rows = Vec::new();
    for row in json.get("rows").and_then(Json::as_arr).unwrap_or_default() {
        let mut labels: Vec<(String, String)> = row
            .get("labels")
            .and_then(Json::as_obj)
            .unwrap_or_default()
            .iter()
            .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
            .collect();
        if !labels.iter().any(|(k, _)| k == "report") {
            labels.push(("report".to_string(), name.clone()));
        }
        labels.sort();
        let mut values: Vec<(String, f64)> = row
            .get("values")
            .and_then(Json::as_obj)
            .unwrap_or_default()
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
            .collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        rows.push(Row { labels, values });
    }
    Ok(rows)
}

/// Groups rows by identity key; within a key, order of occurrence is
/// the tiebreak (harness emission order is deterministic).
fn index_rows(rows: Vec<Row>) -> BTreeMap<String, Vec<Row>> {
    let mut map: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    for row in rows {
        map.entry(row.key()).or_default().push(row);
    }
    map
}

fn write_baseline(out: &str, inputs: &[String]) -> Result<(), String> {
    let mut rows = Vec::new();
    for path in inputs {
        rows.extend(load_rows(path)?);
    }
    if rows.is_empty() {
        return Err("refusing to write an empty baseline".to_string());
    }
    // Re-emit as a bench.v1 document through the same escaping rules
    // the writers use (labels/values are already parser-round-tripped).
    let mut body = String::new();
    body.push_str("{\"schema\":\"bench.v1\",\"name\":\"bench_baseline\",\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"labels\":{");
        for (j, (k, v)) in row.labels.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{k}\":\"{v}\""));
        }
        body.push_str("},\"values\":{");
        for (j, (k, v)) in row.values.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{k}\":{v:?}"));
        }
        body.push_str("}}");
    }
    body.push_str("]}\n");
    validate_report(&body).map_err(|e| format!("generated baseline invalid: {e}"))?;
    fs::write(out, &body).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("compare_bench: wrote baseline {out} ({} rows)", rows.len());
    Ok(())
}

fn compare(baseline: &str, inputs: &[String], tolerance: f64) -> Result<usize, String> {
    let base = index_rows(load_rows(baseline)?);
    let mut fresh_rows = Vec::new();
    for path in inputs {
        fresh_rows.extend(load_rows(path)?);
    }
    let fresh = index_rows(fresh_rows);

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (key, base_group) in &base {
        let fresh_group = fresh.get(key).map(Vec::as_slice).unwrap_or_default();
        for (i, brow) in base_group.iter().enumerate() {
            let Some(frow) = fresh_group.get(i) else {
                failures += 1;
                println!("FAIL missing row [{key}] (#{i}) in fresh run");
                continue;
            };
            let fvals: BTreeMap<&str, f64> =
                frow.values.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            for (vk, bv) in &brow.values {
                let Some(&fv) = fvals.get(vk.as_str()) else {
                    failures += 1;
                    println!("FAIL missing value {vk} in [{key}]");
                    continue;
                };
                compared += 1;
                let denom = bv.abs().max(1e-12);
                let drift = (fv - bv) / denom;
                if drift.abs() > tolerance {
                    failures += 1;
                    println!(
                        "FAIL {vk} [{key}]: baseline {bv:.6e}, current {fv:.6e} \
                         ({:+.1}% > ±{:.0}%)",
                        drift * 100.0,
                        tolerance * 100.0
                    );
                }
            }
        }
    }
    // New rows are informational: the gate only guards known metrics.
    let new_rows: usize = fresh
        .iter()
        .filter(|(k, _)| !base.contains_key(*k))
        .map(|(_, v)| v.len())
        .sum();
    if new_rows > 0 {
        println!(
            "note: {new_rows} fresh row(s) not in the baseline \
             (refresh to start gating them)"
        );
    }
    println!(
        "compare_bench: {compared} values compared against {baseline}, \
         {failures} failure(s), tolerance ±{:.0}%",
        tolerance * 100.0
    );
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<String> = None;
    let mut write: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut inputs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" | "--write-baseline" | "--tolerance" => {
                let Some(operand) = args.get(i + 1) else {
                    eprintln!("error: {} expects an operand", args[i]);
                    return ExitCode::FAILURE;
                };
                match args[i].as_str() {
                    "--baseline" => baseline = Some(operand.clone()),
                    "--write-baseline" => write = Some(operand.clone()),
                    _ => match operand.parse::<f64>() {
                        Ok(t) if t >= 0.0 => tolerance = t,
                        _ => {
                            eprintln!("error: bad --tolerance {operand}");
                            return ExitCode::FAILURE;
                        }
                    },
                }
                i += 2;
            }
            other => {
                inputs.push(other.to_string());
                i += 1;
            }
        }
    }
    if inputs.is_empty() {
        eprintln!("compare_bench: no fresh bench.v1 files given");
        return ExitCode::FAILURE;
    }
    let result = match (&write, &baseline) {
        (Some(out), None) => write_baseline(out, &inputs).map(|()| 0),
        (None, Some(base)) => compare(base, &inputs, tolerance),
        _ => {
            eprintln!("compare_bench: pass exactly one of --baseline <file> (compare) or --write-baseline <file> (refresh)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("compare_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
