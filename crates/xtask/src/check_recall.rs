//! `check_recall` — the CI recall-regression gate for the IVF tier.
//!
//! The IVF index, its fit, and the simulator are all deterministic, so
//! approximate-search *quality* can be gated exactly like performance:
//! a committed floor (`experiments_output/ANN_recall_floor.json`, a
//! `bench.v1` document) records the recall@k of every
//! (dataset, distance, nprobe) operating point the `ann_recall`
//! harness sweeps, and this tool fails when a fresh run's recall drops
//! below any committed floor — a silent quality regression — or when a
//! floored operating point disappears from the sweep. Fresh points the
//! floor does not know are reported but allowed (the next refresh
//! absorbs them).
//!
//! Two structural invariants are re-checked from the document itself,
//! independent of the floor: recall@k must be monotone non-decreasing
//! in `nprobe` within each (dataset, distance) curve, and the
//! `nprobe == nlist` point must report recall exactly 1.0 (it is
//! byte-identical to the exact oracle by construction — DESIGN §15).
//!
//! Gate mode (the CI `ann-recall-gate` job):
//!
//! ```text
//! cargo run -p xtask --bin check_recall -- \
//!     --floor experiments_output/ANN_recall_floor.json fresh_ann.json
//! ```
//!
//! Floor-write mode (used by `scripts/update_baselines.sh`):
//!
//! ```text
//! cargo run -p xtask --bin check_recall -- \
//!     --write-floor experiments_output/ANN_recall_floor.json fresh_ann.json
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

use bench::report::{BenchReport, MetricRow};
use bench::{validate_report, Json};

/// One swept operating point from an `ann_recall` bench.v1 document.
struct Point {
    dataset: String,
    distance: String,
    nprobe: u64,
    nlist: u64,
    recall: f64,
}

/// Identity of a point inside the floor map.
fn key(dataset: &str, distance: &str, nprobe: u64) -> String {
    format!("{dataset}/{distance}/nprobe={nprobe}")
}

fn load_points(path: &str) -> Result<Vec<Point>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    validate_report(&text).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut points = Vec::new();
    for (i, row) in json
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap_or_default()
        .iter()
        .enumerate()
    {
        let label = |k: &str| {
            row.get("labels")
                .and_then(|l| l.get(k))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        let value = |k: &str| {
            row.get("values")
                .and_then(|v| v.get(k))
                .and_then(Json::as_f64)
        };
        let (Some(dataset), Some(distance), Some(nprobe)) =
            (label("dataset"), label("distance"), label("nprobe"))
        else {
            return Err(format!("{path}: row {i} is missing ann_recall labels"));
        };
        let nprobe: u64 = nprobe
            .parse()
            .map_err(|_| format!("{path}: row {i} has non-integer nprobe {nprobe:?}"))?;
        let (Some(recall), Some(nlist)) = (value("recall_at_k"), value("nlist")) else {
            return Err(format!("{path}: row {i} is missing recall_at_k / nlist"));
        };
        if !(0.0..=1.0).contains(&recall) {
            return Err(format!("{path}: row {i} recall {recall} outside [0, 1]"));
        }
        points.push(Point {
            dataset,
            distance,
            nprobe,
            nlist: nlist as u64,
            recall,
        });
    }
    if points.is_empty() {
        return Err(format!("{path}: no operating points (empty sweep)"));
    }
    Ok(points)
}

/// The structural invariants any ann_recall document must satisfy,
/// floor or not: monotone recall within each curve, exact recall at
/// the full-probe point.
fn check_structure(points: &[Point]) -> Result<(), String> {
    let mut curves: BTreeMap<(String, String), Vec<(u64, f64)>> = BTreeMap::new();
    for p in points {
        curves
            .entry((p.dataset.clone(), p.distance.clone()))
            .or_default()
            .push((p.nprobe, p.recall));
    }
    for ((dataset, distance), mut curve) in curves {
        curve.sort_by_key(|&(nprobe, _)| nprobe);
        for pair in curve.windows(2) {
            let ((p0, r0), (p1, r1)) = (pair[0], pair[1]);
            if r1 < r0 - 1e-12 {
                return Err(format!(
                    "{dataset}/{distance}: recall not monotone in nprobe \
                     ({r0} at {p0} -> {r1} at {p1})"
                ));
            }
        }
    }
    for p in points {
        if p.nprobe >= p.nlist && (p.recall - 1.0).abs() > 1e-12 {
            return Err(format!(
                "{}/{}: full probe (nprobe {} >= nlist {}) must recall 1.0, got {}",
                p.dataset, p.distance, p.nprobe, p.nlist, p.recall
            ));
        }
    }
    Ok(())
}

fn write_floor(path: &str, points: &[Point]) {
    let mut report = BenchReport::new("ann_recall_floor");
    for p in points {
        report.push(
            MetricRow::new()
                .label("dataset", &p.dataset)
                .label("distance", &p.distance)
                .label("nprobe", &p.nprobe.to_string())
                .value("nlist", p.nlist as f64)
                .value("recall_floor", p.recall),
        );
    }
    report.write(path);
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut floor_path = None;
    let mut write_path = None;
    let mut fresh = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--floor" | "--write-floor" => {
                let path = args
                    .get(i + 1)
                    .ok_or(format!("{} expects a path operand", args[i]))?;
                if args[i] == "--floor" {
                    floor_path = Some(path.clone());
                } else {
                    write_path = Some(path.clone());
                }
                i += 2;
            }
            other => {
                fresh.push(other.to_string());
                i += 1;
            }
        }
    }
    let [fresh] = fresh.as_slice() else {
        return Err("expected exactly one fresh ann_recall bench.v1 document".to_string());
    };
    let points = load_points(fresh)?;
    check_structure(&points)?;

    if let Some(path) = write_path {
        write_floor(&path, &points);
        println!(
            "wrote recall floor with {} operating point(s) to {path}",
            points.len()
        );
        return Ok(true);
    }

    let floor_path = floor_path.ok_or("pass --floor <path> or --write-floor <path>")?;
    let text =
        fs::read_to_string(&floor_path).map_err(|e| format!("cannot read {floor_path}: {e}"))?;
    validate_report(&text).map_err(|e| format!("{floor_path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{floor_path}: {e}"))?;
    let mut floors: BTreeMap<String, f64> = BTreeMap::new();
    for row in json.get("rows").and_then(Json::as_arr).unwrap_or_default() {
        let label = |k: &str| {
            row.get("labels")
                .and_then(|l| l.get(k))
                .and_then(Json::as_str)
        };
        let (Some(dataset), Some(distance), Some(nprobe)) =
            (label("dataset"), label("distance"), label("nprobe"))
        else {
            return Err(format!("{floor_path}: row is missing floor labels"));
        };
        let Some(recall) = row
            .get("values")
            .and_then(|v| v.get("recall_floor"))
            .and_then(Json::as_f64)
        else {
            return Err(format!("{floor_path}: row is missing recall_floor"));
        };
        let nprobe: u64 = nprobe
            .parse()
            .map_err(|_| format!("{floor_path}: non-integer nprobe {nprobe:?}"))?;
        floors.insert(key(dataset, distance, nprobe), recall);
    }
    if floors.is_empty() {
        return Err(format!("{floor_path}: empty floor (refresh and commit it)"));
    }

    let mut ok = true;
    let mut seen = 0usize;
    for p in &points {
        let k = key(&p.dataset, &p.distance, p.nprobe);
        match floors.remove(&k) {
            Some(floor) => {
                seen += 1;
                if p.recall < floor - 1e-12 {
                    eprintln!(
                        "FAIL {k}: recall {} fell below committed floor {floor}",
                        p.recall
                    );
                    ok = false;
                } else if p.recall > floor + 1e-12 {
                    println!(
                        "note {k}: recall {} above floor {floor} (refresh absorbs the gain)",
                        p.recall
                    );
                }
            }
            None => println!(
                "new operating point {k} (recall {}), not floored yet",
                p.recall
            ),
        }
    }
    for (k, floor) in &floors {
        eprintln!("FAIL {k}: floored at {floor} but missing from the fresh sweep");
        ok = false;
    }
    println!(
        "checked {seen} floored operating point(s) across {} fresh row(s)",
        points.len()
    );
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!(
                "recall gate failed — if this quality change is intentional, refresh \
                 with scripts/update_baselines.sh and commit the diff"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
