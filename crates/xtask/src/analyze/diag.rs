//! Typed diagnostics and the `diag.v1` report format.
//!
//! Mirrors `bench.v1` (`crates/bench/src/report.rs`): a hand-rolled
//! writer (the workspace carries no serde), a validator built on the
//! same dependency-free [`bench::Json`] parser, and a self-validating
//! [`DiagReport::write`] that re-parses its own rendering before
//! touching disk — the analyzer must not exit zero after emitting a
//! document its CI consumers will reject.
//!
//! Document shape:
//!
//! ```text
//! {"schema":"diag.v1","name":"analyze",
//!  "findings":[{"rule":"uncosted-smem","severity":"deny",
//!               "file":"crates/kernels/src/foo.rs","line":12,"col":9,
//!               "message":"…","help":"…",
//!               "fingerprint":"a1b2c3d4e5f60718","baselined":false}, …],
//!  "summary":{"files_scanned":14,"findings":2,"baselined":2,
//!             "fresh":0,"stale_baseline":0}}
//! ```
//!
//! `fingerprint` identifies a finding across unrelated edits: it hashes
//! the rule, the file, and the whitespace-normalized *text* of the
//! flagged line — not the line number — so findings survive code moving
//! up or down a file but die with the code they describe. The committed
//! suppression baseline matches on it (see [`super::baseline`]).

use bench::{json_escape, Json};
use std::fmt;

/// Schema tag carried by every document this module writes.
pub const SCHEMA: &str = "diag.v1";

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported but never fails the gate.
    Warn,
    /// Fails the gate unless baselined or inside an allow region.
    Deny,
}

impl Severity {
    /// The schema string for this severity.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses a schema string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (kebab-case, e.g. `barrier-divergence`).
    pub rule: &'static str,
    /// Gate behaviour.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or opt out.
    pub help: String,
    /// Content-addressed identity (see [`fingerprint`]).
    pub fingerprint: String,
    /// True when matched by the committed suppression baseline.
    pub baselined: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{}: [{}] {}\n    help: {}",
            self.severity.as_str(),
            self.file,
            self.line,
            self.col,
            self.rule,
            self.message,
            self.help
        )
    }
}

/// FNV-1a 64-bit over `rule | file | normalized line text`, rendered as
/// 16 hex digits. The line text is whitespace-normalized (runs of
/// whitespace collapse to one space, ends trimmed) so reindenting does
/// not orphan baseline entries.
pub fn fingerprint(rule: &str, file: &str, line_text: &str) -> String {
    let mut norm = String::with_capacity(line_text.len());
    let mut in_ws = true; // leading whitespace drops
    for c in line_text.chars() {
        if c.is_whitespace() {
            if !in_ws {
                norm.push(' ');
                in_ws = true;
            }
        } else {
            norm.push(c);
            in_ws = false;
        }
    }
    let norm = norm.trim_end();

    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for bytes in [
        rule.as_bytes(),
        b"|",
        file.as_bytes(),
        b"|",
        norm.as_bytes(),
    ] {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    format!("{h:016x}")
}

/// A full `diag.v1` document ready to render.
#[derive(Debug)]
pub struct DiagReport {
    /// Document name (`analyze` for live runs, `analyze_baseline` for
    /// the committed suppression file).
    pub name: String,
    /// How many files the run scanned.
    pub files_scanned: usize,
    /// Baseline entries with no matching finding in this run.
    pub stale_baseline: usize,
    /// The findings, in (file, line, col) order.
    pub findings: Vec<Diagnostic>,
}

impl DiagReport {
    /// Findings not covered by the baseline.
    pub fn fresh(&self) -> usize {
        self.findings.iter().filter(|d| !d.baselined).count()
    }

    /// Renders the document as `diag.v1` JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"name\":\"{}\",\"findings\":[",
            SCHEMA,
            json_escape(&self.name)
        );
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\
                 \"line\":{},\"col\":{},\"message\":\"{}\",\"help\":\"{}\",\
                 \"fingerprint\":\"{}\",\"baselined\":{}}}",
                json_escape(d.rule),
                d.severity.as_str(),
                json_escape(&d.file),
                d.line,
                d.col,
                json_escape(&d.message),
                json_escape(&d.help),
                json_escape(&d.fingerprint),
                d.baselined
            );
        }
        let baselined = self.findings.len() - self.fresh();
        let _ = write!(
            out,
            "\n],\"summary\":{{\"files_scanned\":{},\"findings\":{},\
             \"baselined\":{},\"fresh\":{},\"stale_baseline\":{}}}}}\n",
            self.files_scanned,
            self.findings.len(),
            baselined,
            self.fresh(),
            self.stale_baseline
        );
        out
    }

    /// Renders, re-parses, validates, and only then writes the document.
    ///
    /// # Panics
    ///
    /// Panics when the rendering fails its own schema validation (a bug
    /// in the analyzer) or the file cannot be written — the gate must
    /// not exit zero after emitting a document `check_bench_json` will
    /// reject.
    pub fn write(&self, path: &str) {
        let text = self.to_json();
        if let Err(e) = validate_diag(&text) {
            panic!("diag report {path:?} failed self-validation: {e}");
        }
        if let Err(e) = std::fs::write(path, &text) {
            panic!("cannot write diag report {path:?}: {e}");
        }
    }
}

/// Validates a `diag.v1` document: schema/name present, every finding
/// fully typed (known severity, positive line/col, 16-hex fingerprint),
/// and the summary arithmetic consistent with the findings array.
pub fn validate_diag(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing \"name\"")?;
    if name.is_empty() {
        return Err("empty \"name\"".to_string());
    }
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing \"findings\" array")?;
    let mut baselined = 0usize;
    for (i, f) in findings.iter().enumerate() {
        let field = |key: &str| -> Result<&Json, String> {
            f.get(key).ok_or(format!("finding #{i}: missing {key:?}"))
        };
        let s = |key: &str| -> Result<&str, String> {
            field(key)?
                .as_str()
                .ok_or(format!("finding #{i}: {key:?} must be a string"))
        };
        let n = |key: &str| -> Result<f64, String> {
            field(key)?
                .as_f64()
                .ok_or(format!("finding #{i}: {key:?} must be a number"))
        };
        if s("rule")?.is_empty() {
            return Err(format!("finding #{i}: empty \"rule\""));
        }
        let sev = s("severity")?;
        if Severity::parse(sev).is_none() {
            return Err(format!("finding #{i}: unknown severity {sev:?}"));
        }
        if s("file")?.is_empty() {
            return Err(format!("finding #{i}: empty \"file\""));
        }
        for key in ["line", "col"] {
            let v = n(key)?;
            if v < 1.0 || v.fract() != 0.0 {
                return Err(format!("finding #{i}: {key:?} must be a positive integer"));
            }
        }
        s("message")?;
        s("help")?;
        let fp = s("fingerprint")?;
        if fp.len() != 16 || !fp.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!(
                "finding #{i}: fingerprint {fp:?} is not 16 hex digits"
            ));
        }
        match f.get("baselined").and_then(Json::as_bool) {
            Some(true) => baselined += 1,
            Some(false) => {}
            None => return Err(format!("finding #{i}: missing boolean \"baselined\"")),
        }
    }
    let summary = doc
        .get("summary")
        .and_then(Json::as_obj)
        .ok_or("missing \"summary\" object")?;
    let count = |key: &str| -> Result<usize, String> {
        summary
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as usize)
            .ok_or(format!("summary: {key:?} must be a non-negative integer"))
    };
    if count("findings")? != findings.len() {
        return Err("summary \"findings\" disagrees with the findings array".to_string());
    }
    if count("baselined")? != baselined {
        return Err("summary \"baselined\" disagrees with the findings array".to_string());
    }
    if count("fresh")? != findings.len() - baselined {
        return Err("summary \"fresh\" disagrees with the findings array".to_string());
    }
    count("files_scanned")?;
    count("stale_baseline")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiagReport {
        DiagReport {
            name: "analyze".to_string(),
            files_scanned: 3,
            stale_baseline: 0,
            findings: vec![Diagnostic {
                rule: "uncosted-smem",
                severity: Severity::Deny,
                file: "crates/kernels/src/foo.rs".to_string(),
                line: 12,
                col: 9,
                message: "raw `read` bypasses the cost model".to_string(),
                help: "use a WarpCtx collective or a \"documented\" region".to_string(),
                fingerprint: fingerprint("uncosted-smem", "foo.rs", "x.read(0);"),
                baselined: true,
            }],
        }
    }

    #[test]
    fn render_round_trips_and_validates() {
        let text = sample().to_json();
        validate_diag(&text).expect("valid");
        let doc = Json::parse(&text).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let findings = doc.get("findings").and_then(Json::as_arr).expect("arr");
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("help").and_then(Json::as_str),
            Some("use a WarpCtx collective or a \"documented\" region")
        );
    }

    #[test]
    fn fingerprint_ignores_position_but_not_content() {
        let a = fingerprint("r", "f.rs", "    x.read(0);");
        let b = fingerprint("r", "f.rs", "x.read(0);  ");
        let c = fingerprint("r", "f.rs", "x.read(1);");
        let d = fingerprint("other", "f.rs", "x.read(0);");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn summary_mismatch_is_rejected() {
        let mut text = sample().to_json();
        text = text.replace("\"fresh\":0", "\"fresh\":5");
        assert!(validate_diag(&text).is_err());
    }

    #[test]
    fn bad_fingerprint_is_rejected() {
        let mut rep = sample();
        rep.findings[0].fingerprint = "nothex".to_string();
        assert!(validate_diag(&rep.to_json()).is_err());
    }

    #[test]
    fn write_is_self_validating() {
        let dir = std::env::temp_dir().join("diag_report_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("out.json");
        sample().write(path.to_str().expect("utf8"));
        let text = std::fs::read_to_string(&path).expect("written");
        validate_diag(&text).expect("valid on disk");
        std::fs::remove_file(&path).ok();
    }
}
