//! `xtask analyze` — the control-flow-aware kernel analyzer.
//!
//! Successor to the old `lint_kernels` line matcher: a lexer-lite token
//! stream ([`lexer`]) feeds a brace/branch scope tracker ([`scope`])
//! whose [`scope::FileModel`] the rule registry ([`rules`]) queries.
//! Findings are typed [`diag::Diagnostic`]s, rendered as human text and
//! as a `diag.v1` JSON document ([`diag`]), and gated against the
//! committed suppression baseline ([`baseline`]).
//!
//! Scan set: every `.rs` file under `crates/kernels/src` plus the
//! cost-model-bearing simulator primitives and collections
//! (`crates/gpu-sim/src/prims`, `crates/gpu-sim/src/collections`) —
//! the code whose honesty the counters, determinism contract
//! (DESIGN.md §10), and resilience cascade (§9) depend on.

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::fs;
use std::path::{Path, PathBuf};

use diag::Diagnostic;

/// Workspace-relative directories the analyzer scans.
pub const SCAN_ROOTS: [&str; 3] = [
    "crates/kernels/src",
    "crates/gpu-sim/src/prims",
    "crates/gpu-sim/src/collections",
];

/// The result of analyzing a source tree.
#[derive(Debug)]
pub struct Analysis {
    /// How many files were scanned.
    pub files_scanned: usize,
    /// All findings, ordered by (file, line, col).
    pub findings: Vec<Diagnostic>,
}

/// Collects the `.rs` files of one directory tree, sorted.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs every rule over the scan set rooted at the workspace `root`.
///
/// Fails when the scan set is empty (a wrong `--root` must not pass as
/// a clean run) or a source file cannot be read.
pub fn analyze_root(root: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs_files(&root.join(sub), &mut files);
    }
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no sources found under {} (scan roots: {})",
            root.display(),
            SCAN_ROOTS.join(", ")
        ));
    }
    let mut findings = Vec::new();
    for path in &files {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        // Forward slashes keep fingerprints and baselines portable
        // across platforms.
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        findings.extend(rules::run_rules(&rel, &text));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(Analysis {
        files_scanned: files.len(),
        findings,
    })
}
