//! `xtask analyze` — the control-flow-aware kernel analyzer.
//!
//! Successor to the old `lint_kernels` line matcher: a lexer-lite token
//! stream ([`lexer`]) feeds a brace/branch scope tracker ([`scope`])
//! whose [`scope::FileModel`] the rule registry ([`rules`]) queries.
//! Findings are typed [`diag::Diagnostic`]s, rendered as human text and
//! as a `diag.v1` JSON document ([`diag`]), and gated against the
//! committed suppression baseline ([`baseline`]).
//!
//! Scan set: every `.rs` file under `crates/kernels/src` plus the
//! cost-model-bearing simulator primitives and collections
//! (`crates/gpu-sim/src/prims`, `crates/gpu-sim/src/collections`) —
//! the code whose honesty the counters, determinism contract
//! (DESIGN.md §10), and resilience cascade (§9) depend on.
//!
//! A second, lighter scan set covers the serving path
//! ([`SPAN_SCAN_ROOTS`]: `crates/serve/src`, `crates/neighbors/src`)
//! with only the span-lifecycle rule ([`rules::run_span_rules`]) — the
//! kernel rules would false-positive all over legitimate host code
//! there. The rule is deny severity like the rest: with admission
//! control shedding requests on purpose, an unterminated span would
//! silently drop a request from the trace, so it gates against the same
//! committed baseline (DESIGN.md §13–§14).

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::fs;
use std::path::{Path, PathBuf};

use diag::Diagnostic;

/// Workspace-relative directories the analyzer scans with the full
/// kernel rule set.
pub const SCAN_ROOTS: [&str; 3] = [
    "crates/kernels/src",
    "crates/gpu-sim/src/prims",
    "crates/gpu-sim/src/collections",
];

/// Workspace-relative directories scanned with only the serving-path
/// span-lifecycle rules ([`rules::run_span_rules`]). Absent roots are
/// skipped silently: fixture trees and partial checkouts need not carry
/// a serving layer.
pub const SPAN_SCAN_ROOTS: [&str; 2] = ["crates/serve/src", "crates/neighbors/src"];

/// The result of analyzing a source tree.
#[derive(Debug)]
pub struct Analysis {
    /// How many files were scanned.
    pub files_scanned: usize,
    /// All findings, ordered by (file, line, col).
    pub findings: Vec<Diagnostic>,
}

/// Collects the `.rs` files of one directory tree, sorted.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs every rule over the scan set rooted at the workspace `root`.
///
/// Fails when the scan set is empty (a wrong `--root` must not pass as
/// a clean run) or a source file cannot be read.
pub fn analyze_root(root: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs_files(&root.join(sub), &mut files);
    }
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no sources found under {} (scan roots: {})",
            root.display(),
            SCAN_ROOTS.join(", ")
        ));
    }
    let mut span_files = Vec::new();
    for sub in SPAN_SCAN_ROOTS {
        collect_rs_files(&root.join(sub), &mut span_files);
    }
    span_files.sort();

    let mut findings: Vec<Diagnostic> = Vec::new();
    type Runner = fn(&str, &str) -> Vec<Diagnostic>;
    for (paths, runner) in [
        (&files, rules::run_rules as Runner),
        (&span_files, rules::run_span_rules as Runner),
    ] {
        for path in paths {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path.strip_prefix(root).unwrap_or(path);
            // Forward slashes keep fingerprints and baselines portable
            // across platforms.
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            findings.extend(runner(&rel, &text));
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(Analysis {
        files_scanned: files.len() + span_files.len(),
        findings,
    })
}
