//! The rule registry: every check the analyzer runs over a file's
//! [`FileModel`].
//!
//! Four rules are ports of the old `lint_kernels` checks (now with real
//! scope awareness instead of line matching) and four are new
//! control-flow-aware rules the line matcher could not express:
//!
//! | rule               | flags                                            | opt-out prefix  |
//! |--------------------|--------------------------------------------------|-----------------|
//! | uncosted-smem      | raw `SharedArray` accessors                      | `smem-lint`     |
//! | counters-bypass    | `counters.<f>` writes and `counters_mut()`       | `counters-lint` |
//! | unranged-phase     | costed loops in warp launches with no range      | `range-lint`    |
//! | panic-path         | `panic!` / `.expect` / `.unwrap` in kernels      | `panic-lint`    |
//! | barrier-divergence | sync under a lane/warp/thread-dependent branch   | `barrier-lint`  |
//! | nondet-reduction   | global-buffer mutation inside `run_warps`        | `nondet-lint`   |
//! | unguarded-fallible | fallible collection ops with no fault guard      | `fallible-lint` |
//! | stale-allow        | allow regions that no longer suppress anything   | —               |
//! | dropped-span       | request spans opened with no terminal event      | —               |
//!
//! Every rule is deny severity: the committed baseline
//! (`experiments_output/ANALYZE_baseline.json`), not a severity tier,
//! is what lets pre-existing findings ride while new ones fail CI.
//! `dropped-span` differs only in its scan set — it runs over the
//! serving scan roots ([`super::SPAN_SCAN_ROOTS`], via
//! [`run_span_rules`] rather than [`run_rules`]), where the admission
//! controller now sheds requests on purpose; a span that ends without
//! a terminal served/rejected event would silently drop a request from
//! the trace, so the rule gates the same way the kernel rules do.
//!
//! Test code (`#[cfg(test)]`, brace-matched — see [`super::scope`]) is
//! exempt from every rule: tests panic, poke shared memory, and mutate
//! buffers freely.

use super::diag::{fingerprint, Diagnostic, Severity};
use super::scope::{build_model, FileModel, MarkerProblem};

/// Catalog entry for one rule (drives docs and marker mapping).
pub struct RuleInfo {
    /// Rule name as it appears in diagnostics and baselines.
    pub name: &'static str,
    /// Allow-region marker family, when the rule supports opt-out.
    pub prefix: Option<&'static str>,
    /// One-line description for the catalog.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "uncosted-smem",
        prefix: Some("smem-lint"),
        summary: "raw SharedArray accessors (read/write/fill/rmw/with_mut) bypass the cost model",
    },
    RuleInfo {
        name: "counters-bypass",
        prefix: Some("counters-lint"),
        summary: "direct counters.<field> writes or counters_mut() edits the ledger without charging cost",
    },
    RuleInfo {
        name: "unranged-phase",
        prefix: Some("range-lint"),
        summary: "counter-costed loops in a warp launch with no profiler range leave cost unattributed",
    },
    RuleInfo {
        name: "panic-path",
        prefix: Some("panic-lint"),
        summary: "panic!/expect/unwrap aborts the launch instead of surfacing a typed fault",
    },
    RuleInfo {
        name: "barrier-divergence",
        prefix: Some("barrier-lint"),
        summary: "a barrier under a lane/warp/thread-dependent branch deadlocks diverged warps",
    },
    RuleInfo {
        name: "nondet-reduction",
        prefix: Some("nondet-lint"),
        summary: "mutating a GlobalBuffer inside run_warps bypasses the deferred atomic-log replay",
    },
    RuleInfo {
        name: "unguarded-fallible",
        prefix: Some("fallible-lint"),
        summary: "fallible collection inserts in a launch that never checks or records faults",
    },
    RuleInfo {
        name: "stale-allow",
        prefix: None,
        summary: "an allow region whose body no longer contains anything its rule would flag",
    },
    RuleInfo {
        name: "dropped-span",
        prefix: None,
        summary: "a serving-path file opens request spans but never records a terminal event",
    },
];

/// The rule a marker family's structural problems are reported under.
fn rule_for_prefix(prefix: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.prefix == Some(prefix))
        .map_or("stale-allow", |r| r.name)
}

/// Raw `SharedArray` accessors that move data without charging cost.
const UNCOSTED_CALLS: [&str; 5] = ["read", "write", "fill", "rmw", "with_mut"];

/// Panicking constructs that abort a simulated launch.
const PANIC_CALLS: [&str; 3] = ["panic!", "expect", "unwrap"];

/// Barrier entry points; all warps of a block must reach them.
const BARRIER_CALLS: [&str; 2] = ["sync", "barrier"];

/// `GlobalBuffer` mutators that bypass the deferred atomic-log replay
/// when called inside a launch (`host_get` stays legal: read-only
/// staging is deterministic).
const NONDET_CALLS: [&str; 2] = ["host_set", "replay_rmw"];

/// Collection operations that can fail at runtime (capacity overflow,
/// probe exhaustion) and must be paired with fault handling.
const FALLIBLE_CALLS: [&str; 1] = ["insert_warp"];

/// Calls that constitute fault handling in a hardened launch.
const GUARD_CALLS: [&str; 4] = [
    "fault_pending",
    "record_fault",
    "record_capacity_overflow",
    "record_corrupted_lane",
];

/// Opening a request span (`RequestTraces::begin_request`) obligates
/// the file to also terminate spans; only *method* calls count, so the
/// definition site in `serve/src/span.rs` stays exempt.
const SPAN_BEGIN_CALL: &str = "begin_request";

/// Calls that record a terminal span event (served or shed).
const SPAN_TERMINAL_CALLS: [&str; 2] = ["finish_request", "reject_request"];

/// Identifiers that carry a per-lane / per-warp / per-thread identity;
/// a branch on one of these diverges within or across warps.
fn is_thread_identity(ident: &str) -> bool {
    ident.contains("lane")
        || ident.contains("warp_id")
        || ident.contains("thread_id")
        || ident == "tid"
}

/// Runs every rule over one file. `file` is the workspace-relative path
/// used in diagnostics and fingerprints; `text` is the source.
pub fn run_rules(file: &str, text: &str) -> Vec<Diagnostic> {
    let model = build_model(text);
    let lines: Vec<&str> = text.lines().collect();
    // Per-region count of findings an allow region suppressed; feeds
    // the stale-allow rule.
    let mut suppressed = vec![0usize; model.regions.len()];
    let mut out = Vec::new();

    let mut ctx = Ctx {
        file,
        lines: &lines,
        model: &model,
        suppressed: &mut suppressed,
        out: &mut out,
    };
    rule_uncosted_smem(&mut ctx);
    rule_counters_bypass(&mut ctx);
    rule_unranged_phase(&mut ctx);
    rule_panic_path(&mut ctx);
    rule_barrier_divergence(&mut ctx);
    rule_nondet_reduction(&mut ctx);
    rule_unguarded_fallible(&mut ctx);
    rule_stale_allow(&model, &suppressed, file, &lines, &mut out);
    rule_marker_hygiene(&model, file, &lines, &mut out);

    out.sort_by_key(|d| (d.line, d.col, d.rule));
    out
}

struct Ctx<'a> {
    file: &'a str,
    lines: &'a [&'a str],
    model: &'a FileModel,
    suppressed: &'a mut [usize],
    out: &'a mut Vec<Diagnostic>,
}

impl Ctx<'_> {
    /// Emits a diagnostic at `at` = (line, col) unless an allow region
    /// of `prefix` is open there — in which case the region's
    /// suppression count grows instead.
    fn emit(
        &mut self,
        rule: &'static str,
        prefix: Option<&str>,
        regions: &[usize],
        at: (u32, u32),
        message: String,
        help: &str,
    ) {
        let (line, col) = at;
        if let Some(prefix) = prefix {
            let covering: Vec<usize> = regions
                .iter()
                .copied()
                .filter(|&r| self.model.regions[r].prefix == prefix)
                .collect();
            if !covering.is_empty() {
                for r in covering {
                    self.suppressed[r] += 1;
                }
                return;
            }
        }
        self.out
            .push(diag(rule, self.file, self.lines, line, col, message, help));
    }
}

/// Builds one deny diagnostic, fingerprinting the flagged source line.
fn diag(
    rule: &'static str,
    file: &str,
    lines: &[&str],
    line: u32,
    col: u32,
    message: String,
    help: &str,
) -> Diagnostic {
    diag_at(rule, Severity::Deny, file, lines, line, col, message, help)
}

/// Builds one diagnostic at an explicit severity.
#[allow(clippy::too_many_arguments)]
fn diag_at(
    rule: &'static str,
    severity: Severity,
    file: &str,
    lines: &[&str],
    line: u32,
    col: u32,
    message: String,
    help: &str,
) -> Diagnostic {
    let text = lines.get(line as usize - 1).copied().unwrap_or_default();
    Diagnostic {
        rule,
        severity,
        file: file.to_string(),
        line,
        col,
        message,
        help: help.to_string(),
        fingerprint: fingerprint(rule, file, text),
        baselined: false,
    }
}

/// Runs the serving-path span-lifecycle rules over one file — the scan
/// set is [`super::SPAN_SCAN_ROOTS`] (serve + neighbors), where the
/// kernel rules would drown legitimate host code in noise.
///
/// `dropped-span`: a file whose live code opens request
/// spans via `.begin_request(…)` must also contain at least one
/// terminal call (`.finish_request(…)` or `.reject_request(…)`);
/// otherwise every span the file opens leaks as non-terminal in the
/// per-request trace. One finding per file, at the first opening call.
pub fn run_span_rules(file: &str, text: &str) -> Vec<Diagnostic> {
    let model = build_model(text);
    let lines: Vec<&str> = text.lines().collect();
    let terminated = model
        .calls
        .iter()
        .any(|c| !c.in_test && c.method && SPAN_TERMINAL_CALLS.contains(&c.callee.as_str()));
    if terminated {
        return Vec::new();
    }
    let Some(call) = model
        .calls
        .iter()
        .find(|c| !c.in_test && c.method && c.callee == SPAN_BEGIN_CALL)
    else {
        return Vec::new();
    };
    vec![diag_at(
        "dropped-span",
        Severity::Deny,
        file,
        &lines,
        call.line,
        call.col,
        "`.begin_request(…)` opens request spans, but this file never records a terminal \
         span event"
            .to_string(),
        "end every span with `.finish_request(…)` (served) or `.reject_request(…)` (shed) \
         so traces cannot leak open spans",
    )]
}

fn rule_uncosted_smem(ctx: &mut Ctx<'_>) {
    for call in ctx.model.calls.clone() {
        if call.in_test || !call.method || !UNCOSTED_CALLS.contains(&call.callee.as_str()) {
            continue;
        }
        ctx.emit(
            "uncosted-smem",
            Some("smem-lint"),
            &call.regions,
            (call.line, call.col),
            format!("raw `.{}(…)` bypasses the cost model", call.callee),
            "charge the access through a WarpCtx collective (smem_gather/scatter/atomic) \
             or wrap it in a documented `smem-lint` allow region",
        );
    }
}

fn rule_counters_bypass(ctx: &mut Ctx<'_>) {
    for assign in ctx.model.assigns.clone() {
        if assign.in_test {
            continue;
        }
        ctx.emit(
            "counters-bypass",
            Some("counters-lint"),
            &assign.regions,
            (assign.line, assign.col),
            format!("direct write to `counters.{}`", assign.field),
            "charge cost through WarpCtx (issue, branch, gathers/scatters) instead of \
             editing the ledger, or wrap in a documented `counters-lint` allow region",
        );
    }
    for call in ctx.model.calls.clone() {
        if call.in_test || !call.method || call.callee != "counters_mut" {
            continue;
        }
        ctx.emit(
            "counters-bypass",
            Some("counters-lint"),
            &call.regions,
            (call.line, call.col),
            "`.counters_mut()` hands out the raw ledger".to_string(),
            "charge cost through WarpCtx (issue, branch, gathers/scatters) instead of \
             editing the ledger, or wrap in a documented `counters-lint` allow region",
        );
    }
}

fn rule_unranged_phase(ctx: &mut Ctx<'_>) {
    let launches = ctx
        .model
        .calls
        .iter()
        .any(|c| !c.in_test && c.callee == "run_warps");
    let ranged = ctx
        .model
        .calls
        .iter()
        .any(|c| !c.in_test && c.method && c.callee == "range");
    if !launches || ranged {
        return;
    }
    // First counter-costed call under a loop: the cost lands in the
    // profiler's "unattributed" bucket.
    let Some(call) = ctx.model.calls.clone().into_iter().find(|c| {
        !c.in_test
            && c.method
            && (c.callee == "issue"
                || c.callee.ends_with("_gather")
                || c.callee.ends_with("_scatter"))
            && c.in_loop()
    }) else {
        return;
    };
    ctx.emit(
        "unranged-phase",
        Some("range-lint"),
        &call.regions,
        (call.line, call.col),
        "kernel has counter-costed loops but opens no profiler range".to_string(),
        "wrap phases in `w.range(\"name\", …)` so the hot-spot report can attribute \
         their cost, or wrap in a documented `range-lint` allow region",
    );
}

fn rule_panic_path(ctx: &mut Ctx<'_>) {
    for call in ctx.model.calls.clone() {
        if call.in_test || !PANIC_CALLS.contains(&call.callee.as_str()) {
            continue;
        }
        // `panic!` is a macro, not a method; the other two must be
        // method calls so free functions named `expect` stay legal.
        if call.callee != "panic!" && !call.method {
            continue;
        }
        ctx.emit(
            "panic-path",
            Some("panic-lint"),
            &call.regions,
            (call.line, call.col),
            format!("`{}(…)` aborts the whole simulated launch", call.callee),
            "record a typed fault (`w.record_fault` / `w.record_capacity_overflow`) and \
             limp to the end of the block, or wrap a provably-unreachable case in a \
             documented `panic-lint` allow region",
        );
    }
}

fn rule_barrier_divergence(ctx: &mut Ctx<'_>) {
    for call in ctx.model.calls.clone() {
        if call.in_test || !call.method || !BARRIER_CALLS.contains(&call.callee.as_str()) {
            continue;
        }
        let Some(scope) = call
            .scopes
            .iter()
            .find(|s| s.kind.is_branch() && s.cond_idents.iter().any(|i| is_thread_identity(i)))
        else {
            continue;
        };
        ctx.emit(
            "barrier-divergence",
            Some("barrier-lint"),
            &call.regions,
            (call.line, call.col),
            format!(
                "`.{}(…)` under the divergent branch `{}`: lanes that skip the branch \
                 never reach the barrier",
                call.callee, scope.cond_text
            ),
            "hoist the barrier out of the lane/warp/thread-dependent branch so every \
             participant reaches it, or wrap a provably-uniform condition in a \
             documented `barrier-lint` allow region",
        );
    }
}

fn rule_nondet_reduction(ctx: &mut Ctx<'_>) {
    for call in ctx.model.calls.clone() {
        if call.in_test
            || !call.method
            || !NONDET_CALLS.contains(&call.callee.as_str())
            || !call.inside_closure_of("run_warps")
        {
            continue;
        }
        ctx.emit(
            "nondet-reduction",
            Some("nondet-lint"),
            &call.regions,
            (call.line, call.col),
            format!(
                "`.{}(…)` mutates a GlobalBuffer inside `run_warps`, bypassing the \
                 deferred atomic-log replay",
                call.callee
            ),
            "route the update through `w.global_atomic` so the log replays it in block \
             order (bit-identical under host threads; DESIGN.md §10), or wrap a \
             provably-disjoint write in a documented `nondet-lint` allow region",
        );
    }
}

fn rule_unguarded_fallible(ctx: &mut Ctx<'_>) {
    // Group calls by the specific run_warps closure they sit in: a
    // launch that performs fallible collection ops but never consults
    // or records faults silently drops failures the resilience cascade
    // was built to catch.
    let mut launch_ids: Vec<u32> = Vec::new();
    for call in &ctx.model.calls {
        if let Some(id) = call.closure_id("run_warps") {
            if !launch_ids.contains(&id) {
                launch_ids.push(id);
            }
        }
    }
    for id in launch_ids {
        let in_launch = |c: &super::scope::CallSite| c.closure_id("run_warps") == Some(id);
        let guarded = ctx
            .model
            .calls
            .iter()
            .any(|c| in_launch(c) && GUARD_CALLS.contains(&c.callee.as_str()));
        if guarded {
            continue;
        }
        let Some(call) = ctx.model.calls.clone().into_iter().find(|c| {
            in_launch(c) && !c.in_test && c.method && FALLIBLE_CALLS.contains(&c.callee.as_str())
        }) else {
            continue;
        };
        ctx.emit(
            "unguarded-fallible",
            Some("fallible-lint"),
            &call.regions,
            (call.line, call.col),
            format!(
                "fallible `.{}(…)` in a launch that never checks or records faults",
                call.callee
            ),
            "check `w.fault_pending()` (or record via `w.record_fault` / \
             `w.record_capacity_overflow`) on the failure path so the resilience \
             cascade can retry or degrade, or wrap an infallible use in a documented \
             `fallible-lint` allow region",
        );
    }
}

fn rule_stale_allow(
    model: &FileModel,
    suppressed: &[usize],
    file: &str,
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for (i, region) in model.regions.iter().enumerate() {
        // Only well-formed live-code regions can be stale; malformed
        // ones are already reported by marker hygiene, and test-code
        // regions suppress nothing by construction.
        if region.in_test || !region.closed || region.reason_len < 10 {
            continue;
        }
        if suppressed[i] > 0 {
            continue;
        }
        out.push(diag(
            "stale-allow",
            file,
            lines,
            region.line,
            1,
            format!(
                "`{}` allow region `{}` no longer suppresses anything",
                region.prefix, region.tag
            ),
            "the code this region excused has moved or been fixed; delete the \
             begin/end markers so the exemption cannot silently cover future code",
        ));
    }
}

fn rule_marker_hygiene(model: &FileModel, file: &str, lines: &[&str], out: &mut Vec<Diagnostic>) {
    for region in &model.regions {
        if region.in_test {
            continue;
        }
        if !region.closed {
            out.push(diag(
                rule_for_prefix(&region.prefix),
                file,
                lines,
                region.line,
                1,
                format!(
                    "`{}` allow region `{}` never closed with `{}: end-allow`",
                    region.prefix, region.tag, region.prefix
                ),
                "close the region immediately after the excused code; an open-ended \
                 region exempts everything below it",
            ));
        }
        if region.reason_len < 10 {
            out.push(diag(
                rule_for_prefix(&region.prefix),
                file,
                lines,
                region.line,
                1,
                format!(
                    "`{}` begin-allow needs a reason: `begin-allow(tag): <why this is safe>`",
                    region.prefix
                ),
                "document why the rule does not apply here so reviewers can re-check \
                 the claim when the code changes",
            ));
        }
    }
    for issue in &model.marker_issues {
        let (message, help) = match issue.what {
            MarkerProblem::StrayEnd => (
                format!(
                    "`{}: end-allow` without a matching begin-allow",
                    issue.prefix
                ),
                "delete the stray marker or add the missing begin-allow above the \
                 excused code",
            ),
            MarkerProblem::NestedBegin => (
                format!(
                    "nested `{}` begin-allow; close the previous region first",
                    issue.prefix
                ),
                "allow regions of one family do not nest; close the open region with \
                 `end-allow` before opening another",
            ),
        };
        out.push(diag(
            rule_for_prefix(&issue.prefix),
            file,
            lines,
            issue.line,
            1,
            message,
            help,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        run_rules("test.rs", text)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    // ---- ports of the lint_kernels unit tests -----------------------

    #[test]
    fn clean_code_passes() {
        let src = "let x = w.smem_gather(&arr, &idx);\nw.issue(1);\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn raw_access_is_flagged() {
        let src = "let v = cand_val.read(pos - 1);\narr.write(0, v);\narr.fill(0.0);\n";
        let out = run(src);
        assert_eq!(rules_of(&out), ["uncosted-smem"; 3]);
        assert_eq!(out[1].line, 2);
    }

    #[test]
    fn allow_region_suppresses_with_reason() {
        let src = "\
// smem-lint: begin-allow(serialized-emulation): cost charged via explicit issue below
let v = cand_val.read(0);
// smem-lint: end-allow
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_region_requires_reason_and_closure() {
        let missing_reason =
            "// smem-lint: begin-allow(serialized-emulation):\n// smem-lint: end-allow\n";
        let out = run(missing_reason);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("needs a reason"));

        let unclosed = "// smem-lint: begin-allow(x): a perfectly good reason\narr.read(0);\n";
        let out = run(unclosed);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("never closed"));
        assert_eq!(out[0].rule, "uncosted-smem");

        let stray_end = "// smem-lint: end-allow\n";
        let out = run(stray_end);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("without a matching begin-allow"));
    }

    #[test]
    fn counters_mutations_are_flagged_but_reads_pass() {
        assert!(run("assert!(stats.counters.issues > 10);\n").is_empty());
        assert!(run("let n = stats.counters.global_bytes;\n").is_empty());
        assert!(run("if counters.issues == 3 {}\n").is_empty());
        let out = run("self.counters.issues += 1;\n");
        assert_eq!(rules_of(&out), ["counters-bypass"]);
        assert!(out[0].message.contains("issues"));
        assert_eq!(run("w.counters.bank_conflict_extra = 0;\n").len(), 1);
    }

    #[test]
    fn comments_do_not_false_positive() {
        assert!(run("// talk about arr.read(0) in prose\n").is_empty());
        assert!(run("//! counters.\n").is_empty());
        assert!(run("// never .unwrap( in kernels\n").is_empty());
        let prose = "// dev.run_warps( then while  then .issue( in a comment\n";
        assert!(run(prose).is_empty());
    }

    #[test]
    fn unranged_costed_loop_is_flagged() {
        let src = "dev.run_warps(cfg);\nwhile i < n {\n    w.issue(1);\n}\n";
        let out = run(src);
        assert_eq!(rules_of(&out), ["unranged-phase"]);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn ranged_or_loopless_kernels_pass() {
        let ranged = "dev.run_warps(cfg);\nw.range(\"scan\", |w| {\n    while i < n {\n        w.issue(1);\n    }\n});\n";
        assert!(run(ranged).is_empty());
        let elementwise = "dev.run_warps(cfg);\nw.issue(1);\nw.global_scatter(&out, &idx, &v);\n";
        assert!(run(elementwise).is_empty());
        let host = "for x in 0..n {\n    v.push(x);\n}\nw.issue(1);\n";
        assert!(run(host).is_empty());
    }

    #[test]
    fn panic_paths_flagged_in_kernel_code() {
        let src = "let v = opt.unwrap();\nlet w = res.expect(\"msg\");\npanic!(\"boom\");\n";
        let out = run(src);
        assert_eq!(rules_of(&out), ["panic-path"; 3]);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn panic_allow_region_and_test_module_are_skipped() {
        let src = "\
// panic-lint: begin-allow(guarded-unwrap): is_some checked on the same lane above
let v = opt.expect(\"set\");
// panic-lint: end-allow
#[cfg(test)]
mod tests { fn t() { x.unwrap(); } }
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unwrap_or_and_free_expect_are_not_panics() {
        assert!(run("let v = x.unwrap_or(0);\n").is_empty());
        assert!(run("let v = expect(thing);\n").is_empty());
    }

    // ---- the cfg(test) scoping fix (satellite 1) --------------------

    #[test]
    fn code_after_a_test_module_is_still_scanned() {
        // The old lint_kernels skipped from the first #[cfg(test)] to
        // EOF, so the trailing unwrap passed silently. The scope
        // tracker confines the exemption to the braced module.
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn also_live(y: Option<u32>) -> u32 { y.unwrap() }
";
        let out = run(src);
        assert_eq!(rules_of(&out), ["panic-path"]);
        assert_eq!(out[0].line, 6);
    }

    // ---- barrier-divergence -----------------------------------------

    #[test]
    fn barrier_under_lane_branch_is_flagged() {
        // The old lint has no concept of enclosing branches: this
        // passes lint_kernels entirely.
        let src = "\
block.run_warps(|w| {
    if w.lane_id() == 0 {
        block.sync();
    }
});
";
        let out = run(src);
        assert_eq!(rules_of(&out), ["barrier-divergence"]);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("lane_id"));
    }

    #[test]
    fn barrier_variants_and_identity_spellings_are_caught() {
        let warp = "while warp_id < n {\n    w.barrier(active);\n}\n";
        assert_eq!(rules_of(&run(warp)), ["barrier-divergence"]);
        let tid = "if tid == 0 {\n    block.sync();\n}\n";
        assert_eq!(rules_of(&run(tid)), ["barrier-divergence"]);
        let else_arm = "if lane == 0 {\n    a();\n} else {\n    block.sync();\n}\n";
        assert_eq!(rules_of(&run(else_arm)), ["barrier-divergence"]);
    }

    #[test]
    fn uniform_branches_and_top_level_barriers_pass() {
        let uniform = "if cols > 64 {\n    block.sync();\n}\n";
        assert!(run(uniform).is_empty());
        let top = "block.run_warps(|w| {\n    w.issue(1);\n});\nblock.sync();\n";
        assert!(run(top).is_empty());
        // A barrier *after* a divergent branch closed is fine.
        let after = "if lane == 0 {\n    a();\n}\nblock.sync();\n";
        assert!(run(after).is_empty());
    }

    #[test]
    fn barrier_allow_region_opts_out() {
        let src = "\
// barrier-lint: begin-allow(uniform-per-block): lane bound proven uniform across the block
if lane_count == full {
    block.sync();
}
// barrier-lint: end-allow
";
        assert!(run(src).is_empty());
    }

    // ---- nondet-reduction -------------------------------------------

    #[test]
    fn global_mutation_inside_launch_is_flagged() {
        // Passes the old lint: host_set is not an uncosted smem call.
        let src = "\
block.run_warps(|w| {
    out.host_set(i, v);
    acc.replay_rmw(i, f);
});
";
        let out = run(src);
        assert_eq!(rules_of(&out), ["nondet-reduction"; 2]);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn staging_reads_and_host_side_writes_pass() {
        let read_only =
            "block.run_warps(|w| {\n    let v = buf.host_get(i);\n    w.issue(1);\n});\n";
        assert!(run(read_only).is_empty());
        let host_side = "out.host_set(0, 1.0);\nblock.run_warps(|w| {\n    w.issue(1);\n});\n";
        assert!(run(host_side).is_empty());
        let atomic = "block.run_warps(|w| {\n    w.global_atomic(&out, &idx, &v, add);\n});\n";
        assert!(run(atomic).is_empty());
    }

    #[test]
    fn nondet_allow_region_opts_out() {
        let src = "\
block.run_warps(|w| {
    // nondet-lint: begin-allow(disjoint-slots): each warp owns slot warp_id, no overlap
    out.host_set(w.warp_id, v);
    // nondet-lint: end-allow
});
";
        assert!(run(src).is_empty());
    }

    // ---- unguarded-fallible -----------------------------------------

    #[test]
    fn unguarded_insert_is_flagged() {
        // Passes the old lint: insert_warp is not on any old list.
        let src = "\
block.run_warps(|w| {
    table.insert_warp(w, &keys, &vals);
});
";
        let out = run(src);
        assert_eq!(rules_of(&out), ["unguarded-fallible"]);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn guarded_or_insert_free_launches_pass() {
        let guarded = "\
block.run_warps(|w| {
    table.insert_warp(w, &keys, &vals);
    if w.fault_pending() {
        return;
    }
});
";
        assert!(run(guarded).is_empty());
        let recorded = "\
block.run_warps(|w| {
    if table.insert_warp(w, &keys, &vals).is_err() {
        w.record_capacity_overflow();
    }
});
";
        assert!(run(recorded).is_empty());
        let no_insert = "block.run_warps(|w| {\n    w.issue(1);\n});\n";
        assert!(run(no_insert).is_empty());
    }

    #[test]
    fn guard_in_one_launch_does_not_cover_another() {
        let src = "\
block.run_warps(|w| {
    table.insert_warp(w, &keys, &vals);
    if w.fault_pending() { return; }
});
block.run_warps(|w| {
    table.insert_warp(w, &keys, &vals);
});
";
        let out = run(src);
        assert_eq!(rules_of(&out), ["unguarded-fallible"]);
        assert_eq!(out[0].line, 6);
    }

    #[test]
    fn fallible_allow_region_opts_out() {
        let src = "\
block.run_warps(|w| {
    // fallible-lint: begin-allow(preflight-sized): table sized to 2x the batch upstream
    table.insert_warp(w, &keys, &vals);
    // fallible-lint: end-allow
});
";
        assert!(run(src).is_empty());
    }

    // ---- stale-allow ------------------------------------------------

    #[test]
    fn region_suppressing_nothing_is_stale() {
        let src = "\
// smem-lint: begin-allow(leftover): this excused a read that has since been fixed
w.issue(1);
// smem-lint: end-allow
";
        let out = run(src);
        assert_eq!(rules_of(&out), ["stale-allow"]);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn region_still_suppressing_is_not_stale() {
        let src = "\
// smem-lint: begin-allow(emu): cost charged in aggregate by the probe below
x.read(0);
// smem-lint: end-allow
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn malformed_regions_are_not_double_reported_as_stale() {
        // Missing reason already fires marker hygiene; stale-allow
        // stays quiet so one mistake yields one finding per cause.
        let src = "// panic-lint: begin-allow(tag):\nw.issue(1);\n// panic-lint: end-allow\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("needs a reason"));
    }

    #[test]
    fn test_code_regions_are_exempt_from_staleness() {
        let src = "\
#[cfg(test)]
mod tests {
    // smem-lint: begin-allow(test-only): tests poke shared memory directly by design
    fn t() {}
    // smem-lint: end-allow
}
";
        assert!(run(src).is_empty());
    }

    // ---- misc -------------------------------------------------------

    #[test]
    fn counters_mut_is_a_bypass() {
        // The old lint only matched `counters.<field> =` text; handing
        // out the raw ledger via counters_mut() slipped through.
        let src = "let c = block.counters_mut();\n";
        let out = run(src);
        assert_eq!(rules_of(&out), ["counters-bypass"]);
    }

    #[test]
    fn diagnostics_are_ordered_and_fingerprinted() {
        let src = "arr.write(0, v);\nlet v = arr.read(0);\n";
        let out = run(src);
        assert_eq!(out.len(), 2);
        assert!(out[0].line < out[1].line);
        assert!(out.iter().all(|d| d.fingerprint.len() == 16));
        assert_ne!(out[0].fingerprint, out[1].fingerprint);
    }
}
