//! Lexer-lite for kernel sources.
//!
//! The analyzer does not parse Rust; it tokenizes just enough of it to
//! reason about *structure*: words, punctuation, and the comment-borne
//! allow-region markers, with string/char literals, lifetimes, and
//! comments stripped so prose and formatting can never trip a rule.
//! Every token carries its line and column (both 1-based) so
//! diagnostics point at real source locations.
//!
//! What is deliberately dropped: literal *contents* (a `"while "`
//! inside a format string is not control flow), lifetimes (`'a` is not
//! a char literal), and comment text (except the `…-lint:` markers,
//! which are surfaced as [`TokKind::Marker`] tokens so the scope
//! tracker can thread allow regions through the same ordered stream as
//! the code they suppress).

/// One token of the simplified stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// Token kinds the analyzer distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier, keyword, or numeric literal (a run of
    /// alphanumerics and `_`).
    Word(String),
    /// A single punctuation character (`{`, `}`, `(`, `.`, `=`, …).
    Punct(char),
    /// An allow-region marker lifted out of a `//` comment.
    Marker(Marker),
}

/// A `<prefix>: begin-allow(tag): reason` / `<prefix>: end-allow`
/// marker found in a line comment.
#[derive(Debug, Clone, PartialEq)]
pub struct Marker {
    /// The marker family, e.g. `smem-lint` or `panic-lint`.
    pub prefix: String,
    /// Begin or end.
    pub kind: MarkerKind,
}

/// Whether a marker opens or closes an allow region.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkerKind {
    /// `begin-allow(tag): reason` — `reason_len` is the trimmed length
    /// of the text after `):`, used to demand documented reasons.
    Begin {
        /// The parenthesized tag naming why the region exists.
        tag: String,
        /// Trimmed length of the free-text reason after the tag.
        reason_len: usize,
    },
    /// `end-allow`.
    End,
}

const BEGIN_NEEDLE: &str = "-lint: begin-allow(";
const END_NEEDLE: &str = "-lint: end-allow";

/// Extracts a marker from one comment's text, if present.
fn parse_marker(comment: &str) -> Option<Marker> {
    if let Some(pos) = comment.find(BEGIN_NEEDLE) {
        let prefix = marker_prefix(comment, pos);
        let rest = &comment[pos + BEGIN_NEEDLE.len()..];
        let (tag, reason) = match rest.split_once("):") {
            Some((tag, reason)) => (tag.trim().to_string(), reason.trim().len()),
            // Unterminated tag: keep the marker (so the region opens and
            // its missing reason is reported) with what we can salvage.
            None => (rest.trim_end_matches(')').trim().to_string(), 0),
        };
        return Some(Marker {
            prefix,
            kind: MarkerKind::Begin {
                tag,
                reason_len: reason,
            },
        });
    }
    if let Some(pos) = comment.find(END_NEEDLE) {
        let prefix = marker_prefix(comment, pos);
        return Some(Marker {
            prefix,
            kind: MarkerKind::End,
        });
    }
    None
}

/// The word immediately before `-lint:` (e.g. `smem` in `smem-lint:`),
/// rejoined with the `-lint` suffix.
fn marker_prefix(comment: &str, needle_pos: usize) -> String {
    let head = &comment[..needle_pos];
    let word: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    format!("{word}-lint")
}

/// Tokenizes `text`. Never fails: unrecognized bytes are skipped, and
/// an unterminated literal or comment simply ends the stream at EOF.
pub fn lex(text: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances past `n` characters, tracking line/col.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Line comments — scan for markers, then drop.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
                col += 1;
            }
            let comment: String = chars[start..i].iter().collect();
            if let Some(marker) = parse_marker(&comment) {
                toks.push(Tok {
                    kind: TokKind::Marker(marker),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Block comments, nested per Rust.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            bump!(2);
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // String literals (plain and raw, with byte-string prefixes).
        if c == '"' {
            bump!(1);
            while i < chars.len() {
                match chars[i] {
                    '\\' => bump!(2),
                    '"' => {
                        bump!(1);
                        break;
                    }
                    _ => bump!(1),
                }
            }
            continue;
        }
        if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
            // Consume the prefix (`r`, `br`, `rb` never occurs) and
            // count `#`s.
            bump!(1);
            if i < chars.len() && chars[i] == 'r' {
                bump!(1);
            }
            let mut hashes = 0usize;
            while i < chars.len() && chars[i] == '#' {
                hashes += 1;
                bump!(1);
            }
            bump!(1); // opening quote
            'raw: while i < chars.len() {
                if chars[i] == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        bump!(1 + hashes);
                        break 'raw;
                    }
                }
                bump!(1);
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: consume to the closing quote.
                bump!(2);
                while i < chars.len() && chars[i] != '\'' {
                    bump!(1);
                }
                bump!(1);
            } else if chars.get(i + 2) == Some(&'\'') {
                bump!(3); // 'x'
            } else {
                // Lifetime: quote plus identifier.
                bump!(1);
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!(1);
                }
            }
            continue;
        }

        // Words (identifiers, keywords, numbers).
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
                col += 1;
            }
            toks.push(Tok {
                kind: TokKind::Word(chars[start..i].iter().collect()),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Everything else is single-char punctuation.
        toks.push(Tok {
            kind: TokKind::Punct(c),
            line: tline,
            col: tcol,
        });
        bump!(1);
    }
    toks
}

/// True when the char at `i` starts a raw-string literal (`r"`, `r#`,
/// `b"`, `br"`, `br#`) rather than an identifier like `radius`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be the tail of a longer identifier.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    match chars[i] {
        'b' => match chars.get(i + 1) {
            Some('"') => true,
            Some('r') => matches!(chars.get(i + 2), Some('"') | Some('#')),
            _ => false,
        },
        'r' => matches!(chars.get(i + 1), Some('"') | Some('#')),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(text: &str) -> Vec<String> {
        lex(text)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Word(w) => Some(w),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn words_and_puncts_carry_positions() {
        let toks = lex("let x = a.read(0);\n  y");
        assert_eq!(toks[0].kind, TokKind::Word("let".into()));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let dot = toks
            .iter()
            .find(|t| t.kind == TokKind::Punct('.'))
            .expect("dot");
        assert_eq!((dot.line, dot.col), (1, 10));
        let last = toks.last().expect("y token");
        assert_eq!((last.line, last.col), (2, 3));
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        assert_eq!(words("// a.read(0) while for\nx"), vec!["x"]);
        assert_eq!(
            words("/* while { */ y /* nested /* deep */ still */ z"),
            vec!["y", "z"]
        );
        assert_eq!(
            words("let s = \"while .read( \\\" quoted\";"),
            vec!["let", "s"]
        );
        assert_eq!(
            words("let s = r#\"raw \"quote\" .write(\"#; k"),
            vec!["let", "s", "k"]
        );
        assert_eq!(words("let b = b\"bytes.read(\"; m"), vec!["let", "b", "m"]);
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse() {
        assert_eq!(
            words("let c = 'x'; let n = '\\n';"),
            vec!["let", "c", "let", "n"]
        );
        // A lifetime must not swallow the following code as a "literal";
        // the lifetime identifier itself is dropped with the quote.
        assert_eq!(
            words("fn f<'a>(x: &'a str) { x.read(0) }"),
            vec!["fn", "f", "x", "str", "x", "read", "0"]
        );
    }

    #[test]
    fn identifiers_starting_with_r_or_b_are_not_raw_strings() {
        assert_eq!(
            words("let radius = b1 + rows;"),
            vec!["let", "radius", "b1", "rows"]
        );
    }

    #[test]
    fn markers_are_lifted_from_comments() {
        let toks = lex("// smem-lint: begin-allow(emu): cost charged via explicit issue\nx.read(0);\n// smem-lint: end-allow\n");
        let TokKind::Marker(m) = &toks[0].kind else {
            panic!("expected marker, got {:?}", toks[0]);
        };
        assert_eq!(m.prefix, "smem-lint");
        match &m.kind {
            MarkerKind::Begin { tag, reason_len } => {
                assert_eq!(tag, "emu");
                assert!(*reason_len >= 10);
            }
            MarkerKind::End => panic!("expected begin"),
        }
        let TokKind::Marker(end) = &toks.last().expect("end marker").kind else {
            panic!("expected trailing end marker");
        };
        assert_eq!(end.kind, MarkerKind::End);
        assert_eq!(end.prefix, "smem-lint");
    }

    #[test]
    fn begin_marker_without_reason_reports_zero_length() {
        let toks = lex("// panic-lint: begin-allow(tag):\n");
        let TokKind::Marker(m) = &toks[0].kind else {
            panic!("marker");
        };
        assert_eq!(
            m.kind,
            MarkerKind::Begin {
                tag: "tag".into(),
                reason_len: 0
            }
        );
        assert_eq!(m.prefix, "panic-lint");
    }
}
