//! The committed suppression baseline.
//!
//! `experiments_output/ANALYZE_baseline.json` is a `diag.v1` document
//! (name `analyze_baseline`) recording the findings the repo has
//! accepted — the mechanism that let the once-warn-only
//! `unranged-phase`, `panic-path`, and `dropped-span` rules become
//! deny: pre-existing findings ride, anything new fails CI. Mirrors the `compare_bench` baseline workflow:
//! `--write-baseline` refreshes the file (via
//! `scripts/update_analyze_baseline.sh`), and the committed diff is
//! reviewed like any other code change.
//!
//! Matching is a multiset over `(rule, file, fingerprint)` — the
//! fingerprint hashes the flagged line's *text*, so entries survive
//! code moving within a file but die with the code they excused. A
//! baseline entry with no live finding is *stale* and fails the gate
//! too: an obsolete exemption must be removed, not silently kept around
//! to cover some future regression (the analog of `compare_bench`
//! failing on unexplained improvements).

use std::collections::BTreeMap;
use std::fs;

use super::diag::{validate_diag, DiagReport, Diagnostic};
use bench::Json;

/// One baseline entry's identity.
type Key = (String, String, String); // (rule, file, fingerprint)

/// A loaded baseline: multiset of accepted finding identities.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<Key, usize>,
}

/// A baseline entry with no matching live finding.
#[derive(Debug)]
pub struct StaleEntry {
    /// Rule of the orphaned entry.
    pub rule: String,
    /// File of the orphaned entry.
    pub file: String,
    /// Fingerprint of the orphaned entry.
    pub fingerprint: String,
}

impl Baseline {
    /// Loads and validates a baseline file.
    pub fn load(path: &str) -> Result<Baseline, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        validate_diag(&text).map_err(|e| format!("{path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let mut counts = BTreeMap::new();
        for f in doc
            .get("findings")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let s = |key: &str| {
                f.get(key)
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string()
            };
            *counts
                .entry((s("rule"), s("file"), s("fingerprint")))
                .or_insert(0) += 1;
        }
        Ok(Baseline { counts })
    }

    /// Marks findings covered by this baseline (consuming entries, so
    /// N accepted occurrences cover at most N live ones) and returns
    /// the entries left unconsumed — the stale ones.
    pub fn apply(&self, findings: &mut [Diagnostic]) -> Vec<StaleEntry> {
        let mut remaining = self.counts.clone();
        for d in findings.iter_mut() {
            let key = (d.rule.to_string(), d.file.clone(), d.fingerprint.clone());
            if let Some(n) = remaining.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    d.baselined = true;
                }
            }
        }
        remaining
            .into_iter()
            .flat_map(|((rule, file, fingerprint), n)| {
                std::iter::repeat_with(move || StaleEntry {
                    rule: rule.clone(),
                    file: file.clone(),
                    fingerprint: fingerprint.clone(),
                })
                .take(n)
            })
            .collect()
    }
}

/// Writes the current findings as a fresh baseline (everything marked
/// baselined, since committing the file is the act of accepting them).
/// An empty findings set writes an empty — but valid — document, so a
/// fully clean repo keeps a committed baseline for the gate to diff
/// against.
pub fn write_baseline(path: &str, findings: &[Diagnostic], files_scanned: usize) {
    let findings = findings
        .iter()
        .map(|d| Diagnostic {
            baselined: true,
            ..d.clone()
        })
        .collect();
    DiagReport {
        name: "analyze_baseline".to_string(),
        files_scanned,
        stale_baseline: 0,
        findings,
    }
    .write(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::diag::{fingerprint, Severity};

    fn finding(rule: &'static str, file: &str, line_text: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            file: file.to_string(),
            line: 1,
            col: 1,
            message: "m".to_string(),
            help: "h".to_string(),
            fingerprint: fingerprint(rule, file, line_text),
            baselined: false,
        }
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("analyze_baseline_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_str().expect("utf8").to_string()
    }

    #[test]
    fn round_trip_covers_matching_findings_only() {
        let path = tmp("rt.json");
        let committed = vec![
            finding("uncosted-smem", "a.rs", "x.read(0);"),
            finding("panic-path", "b.rs", "x.unwrap();"),
        ];
        write_baseline(&path, &committed, 2);

        let base = Baseline::load(&path).expect("loads");
        let mut live = vec![
            finding("uncosted-smem", "a.rs", "x.read(0);"),
            finding("panic-path", "b.rs", "y.unwrap();"), // different line text
        ];
        let stale = base.apply(&mut live);
        assert!(live[0].baselined);
        assert!(!live[1].baselined);
        // The old b.rs entry no longer matches anything: stale.
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "panic-path");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multiset_matching_consumes_entries() {
        let path = tmp("multi.json");
        // One accepted occurrence…
        write_baseline(&path, &[finding("uncosted-smem", "a.rs", "x.read(0);")], 1);
        let base = Baseline::load(&path).expect("loads");
        // …cannot cover two identical live findings.
        let mut live = vec![
            finding("uncosted-smem", "a.rs", "x.read(0);"),
            finding("uncosted-smem", "a.rs", "x.read(0);"),
        ];
        let stale = base.apply(&mut live);
        assert!(stale.is_empty());
        assert_eq!(live.iter().filter(|d| d.baselined).count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_baseline_is_valid_and_covers_nothing() {
        let path = tmp("empty.json");
        write_baseline(&path, &[], 5);
        let base = Baseline::load(&path).expect("loads");
        let mut live = vec![finding("uncosted-smem", "a.rs", "x.read(0);")];
        let stale = base.apply(&mut live);
        assert!(stale.is_empty());
        assert!(!live[0].baselined);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_baseline_is_rejected() {
        let path = tmp("bad.json");
        std::fs::write(&path, "{\"schema\":\"bench.v1\"}").expect("write");
        assert!(Baseline::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
