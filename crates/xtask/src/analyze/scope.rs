//! Brace/branch scope tracker: turns the token stream into a
//! [`FileModel`] the rules can query.
//!
//! One pass over the tokens maintains a stack of brace scopes, each
//! annotated with *why* it opened: a conditional (`if`/`else`), a loop
//! (`while`/`for`/`loop`), a `match`, a closure passed to a named call
//! (`run_warps`, `range`, …), or a plain block. Conditionals and loops
//! capture the identifier list of their condition text, which is what
//! lets the barrier-divergence rule ask "does any enclosing branch
//! depend on a lane/thread/warp id?" without a real parser.
//!
//! `#[cfg(test)]` is scoped to the attribute's brace-matched item — the
//! fix for the old `lint_kernels` behaviour of skipping everything from
//! the first test attribute to end-of-file, which silently exempted any
//! non-test code that followed a test module.
//!
//! Allow regions (`<prefix>-lint: begin-allow(tag): reason` …
//! `<prefix>-lint: end-allow`) are threaded through the same stream:
//! every call/assignment site records which regions were open at that
//! point, so rules can honor opt-outs and the stale-allow rule can spot
//! regions that no longer suppress anything.

use super::lexer::{lex, Marker, MarkerKind, Tok, TokKind};

/// Why a brace scope opened.
#[derive(Debug, Clone, PartialEq)]
pub enum ScopeKind {
    /// `{ … }` with no recognized head (item bodies, plain blocks,
    /// match arms).
    Plain,
    /// `if <cond> { … }` (and `else if`).
    If,
    /// `else { … }` — carries the condition of the `if` it belongs to.
    Else,
    /// `while <cond> { … }` (including `while let`).
    While,
    /// `for <pat> in <iter> { … }`.
    For,
    /// `loop { … }`.
    Loop,
    /// `match <scrutinee> { … }`.
    Match,
    /// A brace opened inside the argument list of `callee(…)` — i.e. a
    /// closure body passed to that call. `run_warps` and `range` are
    /// the ones rules care about.
    Closure(String),
}

impl ScopeKind {
    /// True for scopes whose body executes conditionally or repeatedly.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            ScopeKind::If | ScopeKind::Else | ScopeKind::While | ScopeKind::For | ScopeKind::Match
        )
    }

    /// True for loop scopes.
    pub fn is_loop(&self) -> bool {
        matches!(self, ScopeKind::While | ScopeKind::For | ScopeKind::Loop)
    }
}

/// One enclosing scope, as recorded at a call/assignment site.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeInfo {
    /// Why the scope opened.
    pub kind: ScopeKind,
    /// Identifiers appearing in the scope's head (condition, iterator
    /// expression, or match scrutinee). Empty for plain/loop/closure.
    pub cond_idents: Vec<String>,
    /// Head text, for diagnostics (words joined by spaces).
    pub cond_text: String,
    /// Unique id of this scope instance within the file (lets rules
    /// group sites by the *specific* closure they sit in).
    pub id: u32,
}

/// A call site: `word(` or `.word(`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name; macros keep their bang (`panic!`).
    pub callee: String,
    /// True when invoked as a method (preceded by `.`).
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// True when inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Enclosing scopes, outermost first.
    pub scopes: Vec<ScopeInfo>,
    /// Indices (into [`FileModel::regions`]) of allow regions open here.
    pub regions: Vec<usize>,
}

impl CallSite {
    /// True when lexically inside a closure passed to `callee`.
    pub fn inside_closure_of(&self, callee: &str) -> bool {
        self.scopes
            .iter()
            .any(|s| matches!(&s.kind, ScopeKind::Closure(c) if c == callee))
    }

    /// Innermost enclosing `callee`-closure scope id, if any.
    pub fn closure_id(&self, callee: &str) -> Option<u32> {
        self.scopes
            .iter()
            .rev()
            .find(|s| matches!(&s.kind, ScopeKind::Closure(c) if c == callee))
            .map(|s| s.id)
    }

    /// True when any enclosing scope is a loop.
    pub fn in_loop(&self) -> bool {
        self.scopes.iter().any(|s| s.kind.is_loop())
    }
}

/// A direct assignment to a `counters.<field>` ledger field.
#[derive(Debug, Clone)]
pub struct AssignSite {
    /// The mutated field name.
    pub field: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// True when inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Open allow regions at this site.
    pub regions: Vec<usize>,
}

/// One allow region found in the file.
#[derive(Debug, Clone)]
pub struct Region {
    /// Marker family (`smem-lint`, `panic-lint`, …).
    pub prefix: String,
    /// The parenthesized tag.
    pub tag: String,
    /// Trimmed length of the documented reason.
    pub reason_len: usize,
    /// Line of the `begin-allow` marker.
    pub line: u32,
    /// True when the region sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// True when a matching `end-allow` was seen.
    pub closed: bool,
}

/// A malformed marker (stray end, nested begin).
#[derive(Debug, Clone)]
pub struct MarkerIssue {
    /// Marker family the issue belongs to.
    pub prefix: String,
    /// 1-based line of the offending marker.
    pub line: u32,
    /// What went wrong.
    pub what: MarkerProblem,
}

/// The malformed-marker cases.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkerProblem {
    /// `end-allow` with no open region of its family.
    StrayEnd,
    /// `begin-allow` while a region of the same family is already open.
    NestedBegin,
}

/// Everything the rules need to know about one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
    /// Every `counters.<field>` mutation.
    pub assigns: Vec<AssignSite>,
    /// Every allow region (open-line order).
    pub regions: Vec<Region>,
    /// Malformed markers.
    pub marker_issues: Vec<MarkerIssue>,
}

/// Keywords that head a captured scope.
const SCOPE_HEADS: [&str; 6] = ["if", "else", "while", "for", "loop", "match"];

/// Keywords that look like calls when followed by `(` but are not.
const NOT_CALLEES: [&str; 10] = [
    "if", "while", "for", "match", "return", "let", "in", "fn", "move", "else",
];

struct Frame {
    kind: ScopeKind,
    cond_idents: Vec<String>,
    cond_text: String,
    is_test: bool,
    id: u32,
}

/// A scope head being captured: from the keyword to its opening brace.
struct Capture {
    kind: ScopeKind,
    idents: Vec<String>,
    text: Vec<String>,
    /// Paren/bracket depth relative to capture start; the head's brace
    /// opens at depth 0.
    delim_depth: i32,
}

/// An active `callee(…)` argument list (for closure attribution).
struct ActiveCall {
    callee: String,
    /// Paren depth *before* its `(` was consumed.
    outer_depth: i32,
}

/// Builds the [`FileModel`] for one file's source text.
pub fn build_model(text: &str) -> FileModel {
    let toks = lex(text);
    let mut model = FileModel::default();

    let mut stack: Vec<Frame> = Vec::new();
    let mut next_scope_id = 0u32;
    let mut capture: Option<Capture> = None;
    let mut paren_depth = 0i32;
    let mut calls: Vec<ActiveCall> = Vec::new();
    // Last closed `if` condition at each point, for `else` inheritance.
    let mut last_if: (Vec<String>, String) = (Vec::new(), String::new());
    // Pending `#[cfg(test)]`: brace depth where the attribute appeared.
    let mut pending_test: Option<usize> = None;
    // Open allow regions per family: (prefix, region index).
    let mut open_regions: Vec<(String, usize)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        let in_test = stack.iter().any(|f| f.is_test);
        match &tok.kind {
            TokKind::Marker(marker) => {
                handle_marker(marker, tok, in_test, &mut model, &mut open_regions);
                i += 1;
            }
            TokKind::Punct('#')
                if matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('['))) =>
            {
                // Attribute: scan to the matching `]`, watching for
                // `cfg(... test ...)`.
                let mut j = i + 2;
                let mut depth = 1i32;
                let mut words: Vec<&str> = Vec::new();
                while j < toks.len() && depth > 0 {
                    match &toks[j].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => depth -= 1,
                        TokKind::Word(w) => words.push(w),
                        _ => {}
                    }
                    j += 1;
                }
                let cfg_test = words.first() == Some(&"cfg")
                    && words.contains(&"test")
                    && !words.contains(&"not");
                if cfg_test || words.first() == Some(&"test") {
                    pending_test = Some(stack.len());
                }
                i = j;
            }
            TokKind::Word(w) => {
                if capture.is_none() && SCOPE_HEADS.contains(&w.as_str()) {
                    let kind = match w.as_str() {
                        "if" => ScopeKind::If,
                        "else" => ScopeKind::Else,
                        "while" => ScopeKind::While,
                        "for" => ScopeKind::For,
                        "loop" => ScopeKind::Loop,
                        _ => ScopeKind::Match,
                    };
                    capture = Some(Capture {
                        kind,
                        idents: Vec::new(),
                        text: Vec::new(),
                        delim_depth: 0,
                    });
                    i += 1;
                    continue;
                }
                if let Some(cap) = capture.as_mut() {
                    // `else if …` upgrades the pending Else to an If.
                    if w == "if" && cap.kind == ScopeKind::Else && cap.text.is_empty() {
                        cap.kind = ScopeKind::If;
                    } else {
                        cap.idents.push(w.clone());
                        cap.text.push(w.clone());
                    }
                }
                // Call site: word followed by `(`, or macro `word!(`.
                let (bang, open_at) = match toks.get(i + 1).map(|t| &t.kind) {
                    Some(TokKind::Punct('!'))
                        if matches!(
                            toks.get(i + 2).map(|t| &t.kind),
                            Some(TokKind::Punct('('))
                        ) =>
                    {
                        (true, i + 2)
                    }
                    Some(TokKind::Punct('(')) => (false, i + 1),
                    _ => (false, 0),
                };
                if open_at > 0 && !NOT_CALLEES.contains(&w.as_str()) {
                    let method = i > 0 && matches!(toks[i - 1].kind, TokKind::Punct('.'));
                    let callee = if bang { format!("{w}!") } else { w.clone() };
                    model.calls.push(CallSite {
                        callee: callee.clone(),
                        method,
                        line: tok.line,
                        col: tok.col,
                        in_test: in_test || pending_test.is_some(),
                        scopes: snapshot(&stack),
                        regions: open_regions.iter().map(|(_, id)| *id).collect(),
                    });
                    // Track the argument list for closure attribution.
                    calls.push(ActiveCall {
                        callee,
                        outer_depth: paren_depth,
                    });
                    paren_depth += 1;
                    if let Some(cap) = capture.as_mut() {
                        cap.delim_depth += 1;
                    }
                    i = open_at + 1;
                    continue;
                }
                // `counters.<field> <op>=` mutation.
                if w == "counters"
                    && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('.')))
                {
                    if let Some(TokKind::Word(field)) = toks.get(i + 2).map(|t| &t.kind) {
                        if is_mutation(&toks, i + 3) {
                            model.assigns.push(AssignSite {
                                field: field.clone(),
                                line: tok.line,
                                col: tok.col,
                                in_test: in_test || pending_test.is_some(),
                                regions: open_regions.iter().map(|(_, id)| *id).collect(),
                            });
                        }
                    }
                }
                i += 1;
            }
            TokKind::Punct(p) => {
                let p = *p;
                if let Some(cap) = capture.as_mut() {
                    match p {
                        '(' | '[' => cap.delim_depth += 1,
                        ')' | ']' => cap.delim_depth -= 1,
                        ';' => {
                            // Expression-position head without a block
                            // we can attribute (`let x = if c {…};`
                            // aborts only if no brace ever opened).
                            capture = None;
                        }
                        _ => {}
                    }
                    if !matches!(p, '{' | '}') {
                        if let Some(cap) = capture.as_mut() {
                            cap.text.push(p.to_string());
                        }
                    }
                }
                match p {
                    '(' => paren_depth += 1,
                    ')' => {
                        paren_depth -= 1;
                        while calls.last().is_some_and(|c| c.outer_depth >= paren_depth) {
                            calls.pop();
                        }
                    }
                    '{' => {
                        let captured = match capture.take() {
                            Some(cap) if cap.delim_depth == 0 => Some(cap),
                            Some(cap) => {
                                // Brace inside the head's parens: a
                                // closure in the condition. Keep
                                // capturing after this scope.
                                capture = Some(cap);
                                None
                            }
                            None => None,
                        };
                        let frame = match captured {
                            Some(cap) => {
                                let (idents, text) = if cap.kind == ScopeKind::Else {
                                    last_if.clone()
                                } else {
                                    (cap.idents, cap.text.join(" "))
                                };
                                Frame {
                                    kind: cap.kind,
                                    cond_idents: idents,
                                    cond_text: text,
                                    is_test: pending_test.take().is_some(),
                                    id: next_scope_id,
                                }
                            }
                            None => {
                                let kind = if paren_depth > 0 {
                                    // Inside some call's argument list:
                                    // attribute to the innermost call.
                                    ScopeKind::Closure(
                                        calls.last().map(|c| c.callee.clone()).unwrap_or_default(),
                                    )
                                } else {
                                    ScopeKind::Plain
                                };
                                Frame {
                                    kind,
                                    cond_idents: Vec::new(),
                                    cond_text: String::new(),
                                    is_test: pending_test.take().is_some(),
                                    id: next_scope_id,
                                }
                            }
                        };
                        next_scope_id += 1;
                        stack.push(frame);
                    }
                    '}' => {
                        if let Some(frame) = stack.pop() {
                            if matches!(frame.kind, ScopeKind::If) {
                                last_if = (frame.cond_idents, frame.cond_text);
                            }
                        }
                    }
                    // An attribute followed by a braceless item
                    // (`#[cfg(test)] use x;`) consumes the pending
                    // flag at its own depth.
                    ';' if pending_test == Some(stack.len()) => pending_test = None,
                    _ => {}
                }
                i += 1;
            }
        }
    }

    // Unclosed regions stay marked `closed: false`; rules report them.
    model
}

fn handle_marker(
    marker: &Marker,
    tok: &Tok,
    in_test: bool,
    model: &mut FileModel,
    open_regions: &mut Vec<(String, usize)>,
) {
    match &marker.kind {
        MarkerKind::Begin { tag, reason_len } => {
            if open_regions.iter().any(|(p, _)| p == &marker.prefix) {
                model.marker_issues.push(MarkerIssue {
                    prefix: marker.prefix.clone(),
                    line: tok.line,
                    what: MarkerProblem::NestedBegin,
                });
            }
            let id = model.regions.len();
            model.regions.push(Region {
                prefix: marker.prefix.clone(),
                tag: tag.clone(),
                reason_len: *reason_len,
                line: tok.line,
                in_test,
                closed: false,
            });
            open_regions.push((marker.prefix.clone(), id));
        }
        MarkerKind::End => {
            // Close the innermost open region of this family.
            match open_regions.iter().rposition(|(p, _)| p == &marker.prefix) {
                Some(pos) => {
                    let (_, id) = open_regions.remove(pos);
                    model.regions[id].closed = true;
                }
                None => model.marker_issues.push(MarkerIssue {
                    prefix: marker.prefix.clone(),
                    line: tok.line,
                    what: MarkerProblem::StrayEnd,
                }),
            }
        }
    }
}

fn snapshot(stack: &[Frame]) -> Vec<ScopeInfo> {
    stack
        .iter()
        .map(|f| ScopeInfo {
            kind: f.kind.clone(),
            cond_idents: f.cond_idents.clone(),
            cond_text: f.cond_text.clone(),
            id: f.id,
        })
        .collect()
}

/// True when the tokens at `at` form `=` (not `==`), `+=`, `-=`, `*=`.
fn is_mutation(toks: &[Tok], at: usize) -> bool {
    match toks.get(at).map(|t| &t.kind) {
        Some(TokKind::Punct('=')) => {
            !matches!(toks.get(at + 1).map(|t| &t.kind), Some(TokKind::Punct('=')))
        }
        Some(TokKind::Punct('+' | '-' | '*')) => {
            matches!(toks.get(at + 1).map(|t| &t.kind), Some(TokKind::Punct('=')))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call<'m>(m: &'m FileModel, name: &str) -> &'m CallSite {
        m.calls
            .iter()
            .find(|c| c.callee == name)
            .unwrap_or_else(|| panic!("no call {name}"))
    }

    #[test]
    fn closure_scopes_attribute_to_their_call() {
        let src = "block.run_warps(|w| {\n    w.range(\"scan\", |w| {\n        w.issue(1);\n    });\n});\n";
        let m = build_model(src);
        let issue = call(&m, "issue");
        assert!(issue.inside_closure_of("run_warps"));
        assert!(issue.inside_closure_of("range"));
        let range = call(&m, "range");
        assert!(range.inside_closure_of("run_warps"));
        assert!(!range.inside_closure_of("range"));
    }

    #[test]
    fn branch_conditions_capture_identifiers() {
        let src =
            "if w.warp_id == 0 {\n    block.sync();\n}\nwhile base < end {\n    w.issue(1);\n}\n";
        let m = build_model(src);
        let sync = call(&m, "sync");
        let branch = sync.scopes.iter().find(|s| s.kind.is_branch()).expect("if");
        assert!(branch.cond_idents.iter().any(|i| i == "warp_id"));
        let issue = call(&m, "issue");
        assert!(issue.in_loop());
        let w = issue
            .scopes
            .iter()
            .find(|s| s.kind.is_loop())
            .expect("while");
        assert_eq!(w.cond_idents, vec!["base", "end"]);
    }

    #[test]
    fn else_branches_inherit_the_if_condition() {
        let src = "if lane == 0 {\n    a();\n} else {\n    b();\n}\n";
        let m = build_model(src);
        let b = call(&m, "b");
        let scope = b
            .scopes
            .iter()
            .find(|s| s.kind == ScopeKind::Else)
            .expect("else");
        assert!(scope.cond_idents.iter().any(|i| i == "lane"));
    }

    #[test]
    fn cfg_test_is_scoped_to_the_braced_item() {
        let src = "\
fn live() { a.read(0); }
#[cfg(test)]
mod tests {
    fn t() { b.read(0); }
}
fn also_live() { c.read(0); }
";
        let m = build_model(src);
        let reads: Vec<(&str, bool)> = m
            .calls
            .iter()
            .filter(|c| c.callee == "read")
            .map(|c| {
                (
                    if c.line <= 1 {
                        "a"
                    } else if c.line <= 4 {
                        "b"
                    } else {
                        "c"
                    },
                    c.in_test,
                )
            })
            .collect();
        assert_eq!(reads, vec![("a", false), ("b", true), ("c", false)]);
    }

    #[test]
    fn cfg_test_on_braceless_items_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x.read(0); }\n";
        let m = build_model(src);
        assert!(!call(&m, "read").in_test);
    }

    #[test]
    fn regions_track_open_spans_and_problems() {
        let src = "\
// smem-lint: begin-allow(emu): charged in aggregate by the probe below
x.read(0);
// smem-lint: end-allow
y.write(1, v);
// panic-lint: end-allow
";
        let m = build_model(src);
        assert_eq!(m.regions.len(), 1);
        assert!(m.regions[0].closed);
        assert_eq!(call(&m, "read").regions, vec![0]);
        assert!(call(&m, "write").regions.is_empty());
        assert_eq!(m.marker_issues.len(), 1);
        assert_eq!(m.marker_issues[0].what, MarkerProblem::StrayEnd);
        assert_eq!(m.marker_issues[0].prefix, "panic-lint");
    }

    #[test]
    fn different_region_families_may_overlap() {
        let src = "\
// smem-lint: begin-allow(a): reason reason reason
// panic-lint: begin-allow(b): reason reason reason
x.read(0);
// smem-lint: end-allow
// panic-lint: end-allow
";
        let m = build_model(src);
        assert!(m.marker_issues.is_empty());
        assert_eq!(call(&m, "read").regions.len(), 2);
    }

    #[test]
    fn counters_mutations_are_assignments_not_reads() {
        let src = "\
self.counters.issues += 1;
let n = stats.counters.global_bytes;
if counters.issues == 3 {}
counters.barriers = 0;
";
        let m = build_model(src);
        let fields: Vec<&str> = m.assigns.iter().map(|a| a.field.as_str()).collect();
        assert_eq!(fields, vec!["issues", "barriers"]);
    }

    #[test]
    fn macro_calls_keep_their_bang() {
        let m = build_model("panic!(\"boom\");\nw.issue(1);\n");
        assert!(m.calls.iter().any(|c| c.callee == "panic!"));
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let m = build_model("let v = x.unwrap_or(0);\n");
        assert!(m.calls.iter().all(|c| c.callee != "unwrap"));
        assert!(m.calls.iter().any(|c| c.callee == "unwrap_or"));
    }
}
