//! Repo automation for the workspace: the static kernel analyzer and
//! its `diag.v1` report format.
//!
//! The binaries (`analyze`, `check_bench_json`, `compare_bench`) are
//! thin CLI shells; the analyzer itself lives here so the fixture suite
//! in `tests/analyze.rs` can drive the same code CI gates on.

#![deny(missing_docs)]

pub mod analyze;
