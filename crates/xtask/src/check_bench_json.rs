//! `check_bench_json` — CI gate for machine-readable bench output.
//!
//! Every bench harness writes a `bench.v1` document when invoked with
//! `--json <path>`, and `spdist --profile=<path>` writes a
//! chrome://tracing trace. Both formats are hand-rolled (the workspace
//! carries no serde), so this tool re-parses them with the same
//! `bench::Json` parser the writers validate against and fails CI when
//! a file drifts from the schema.
//!
//! Usage:
//!
//! ```text
//! cargo run -p xtask --bin check_bench_json -- \
//!     experiments_output/BENCH_*.json [--trace trace.json ...] \
//!     [--diag analyze.json ...] [--metrics metrics.json ...]
//! ```
//!
//! Positional arguments are validated as `bench.v1` reports
//! ([`bench::validate_report`], plus
//! [`bench::validate_latency_percentiles`] for rows carrying
//! `p<N>_latency_s` values — non-negative and monotone in the
//! percentile); each `--trace <path>` is validated as a chrome-trace
//! ([`bench::validate_chrome_trace`]); each `--diag <path>` is
//! validated as a `diag.v1` analyzer report
//! ([`xtask::analyze::diag::validate_diag`]); each `--metrics <path>`
//! is validated as a `metrics.v1` serving-telemetry snapshot
//! ([`bench::validate_metrics`]). Exit status is
//! non-zero when any file fails to read, parse, or validate, or when no
//! files were given at all (an empty CI glob is itself a regression).

use std::fs;
use std::process::ExitCode;

use bench::{
    validate_chrome_trace, validate_latency_percentiles, validate_metrics, validate_report, Json,
};
use xtask::analyze::diag::validate_diag;

enum Kind {
    Report,
    Trace,
    Diag,
    Metrics,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<(String, Kind)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" || args[i] == "--diag" || args[i] == "--metrics" {
            let kind = match args[i].as_str() {
                "--trace" => Kind::Trace,
                "--diag" => Kind::Diag,
                _ => Kind::Metrics,
            };
            match args.get(i + 1) {
                Some(path) => files.push((path.clone(), kind)),
                None => {
                    eprintln!("error: {} expects a path operand", args[i]);
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            files.push((args[i].clone(), Kind::Report));
            i += 1;
        }
    }
    if files.is_empty() {
        eprintln!(
            "check_bench_json: no files given (pass bench.v1 paths, --trace paths, \
             --diag paths, and/or --metrics paths)"
        );
        return ExitCode::FAILURE;
    }

    let mut failures = 0;
    for (path, kind) in &files {
        match check_file(path, kind) {
            Ok(summary) => println!("ok   {path}: {summary}"),
            Err(e) => {
                failures += 1;
                println!("FAIL {path}: {e}");
            }
        }
    }
    println!(
        "check_bench_json: {} of {} files valid",
        files.len() - failures,
        files.len()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn check_file(path: &str, kind: &Kind) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let json = Json::parse(&text)?;
    match kind {
        Kind::Report => {
            validate_report(&text)?;
            let latency_rows = validate_latency_percentiles(&text)?;
            let name = json
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let rows = json
                .get("rows")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            let latency = if latency_rows > 0 {
                format!(" ({latency_rows} with ordered latency percentiles)")
            } else {
                String::new()
            };
            Ok(format!("bench.v1 report {name:?}, {rows} rows{latency}"))
        }
        Kind::Trace => {
            validate_chrome_trace(&text)?;
            let events = json
                .get("traceEvents")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            Ok(format!("chrome-trace, {events} events"))
        }
        Kind::Diag => {
            validate_diag(&text)?;
            let name = json
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let findings = json
                .get("findings")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            Ok(format!("diag.v1 report {name:?}, {findings} finding(s)"))
        }
        Kind::Metrics => {
            validate_metrics(&text)?;
            let name = json
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let counters = json
                .get("counters")
                .and_then(Json::as_obj)
                .map_or(0, <[(String, Json)]>::len);
            let histograms = json
                .get("histograms")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            Ok(format!(
                "metrics.v1 snapshot {name:?}, {counters} counter(s), {histograms} histogram(s)"
            ))
        }
    }
}
