//! `lint_kernels` — a static cost-accounting lint for kernel sources.
//!
//! The simulator's counters are only as honest as the kernels feeding
//! them: `SharedArray::read`/`write`/`fill` and `rmw` touch shared
//! memory *without* charging issues, bank conflicts, or smem accesses —
//! they exist so block-level collectives and serialized emulations can
//! move data while charging an explicit aggregate cost. A kernel that
//! reaches for them directly silently under-reports traffic, and a
//! kernel that mutates `counters` fields directly bypasses the cost
//! model entirely. Both bugs pass every numeric test, which is exactly
//! why they need a lint instead.
//!
//! Checks, over every `.rs` file in `crates/kernels/src`:
//!
//! * **uncosted-smem** — calls to `.read(`, `.write(`, `.fill(`,
//!   `.rmw(` or `.with_mut(` outside an allow region. Legitimate
//!   serialized emulations opt out with a documented region:
//!
//!   ```text
//!   // smem-lint: begin-allow(serialized-emulation): <why this is costed elsewhere>
//!   ...raw accesses...
//!   // smem-lint: end-allow
//!   ```
//!
//!   A `begin-allow` without a reason, an unclosed region, or an
//!   `end-allow` without a begin are themselves violations.
//!
//! * **counters-bypass** — assignments (`=`, `+=`, `-=`, `*=`) to
//!   `counters.<field>` anywhere in kernel code. Kernels must charge
//!   cost through `WarpCtx` (`issue`, `branch`, gathers/scatters),
//!   never by editing the ledger.
//!
//! * **unranged-phase** (warn-only) — kernel files that launch warps
//!   (`run_warps(`), contain counter-costed loops, but never open a
//!   profiler range (`.range(`). Such kernels still cost correctly, but
//!   every cycle lands in the profiler's "unattributed" bucket, so the
//!   hot-spot report can't explain where the time went. Warnings are
//!   printed but do not affect the exit status — elementwise kernels
//!   with trivial bodies are legitimately range-free.
//!
//! * **panic-path** (warn-only) — `panic!(`, `.expect(` or `.unwrap(`
//!   in non-test kernel code. A panic inside a kernel closure aborts
//!   the whole simulated launch instead of surfacing a typed
//!   [`SimError`], which defeats the resilience engine's retry and
//!   fallback handling: hardened kernels record faults
//!   (`w.record_fault` / `w.record_capacity_overflow`) and limp to the
//!   end of the block. Provably-unreachable unwraps opt out with the
//!   same region idiom as the smem lint:
//!
//!   ```text
//!   // panic-lint: begin-allow(guarded-unwrap): <why this cannot fire>
//!   ...guarded expects...
//!   // panic-lint: end-allow
//!   ```
//!
//!   Everything from `#[cfg(test)]` on is skipped — tests panic freely.
//!
//! Exit status is non-zero when any violation is found, so CI can gate
//! on it. Run with `cargo run -p xtask --bin lint_kernels`.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BEGIN_MARKER: &str = "smem-lint: begin-allow(";
const END_MARKER: &str = "smem-lint: end-allow";

/// Method-call suffixes that touch shared memory without charging cost.
const UNCOSTED_CALLS: [&str; 5] = [".read(", ".write(", ".fill(", ".rmw(", ".with_mut("];

#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn main() -> ExitCode {
    // crates/xtask/src -> workspace root is two levels above the
    // manifest dir.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root");
    let kernels_src = root.join("crates/kernels/src");
    let mut files = Vec::new();
    collect_rs_files(&kernels_src, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!(
            "lint_kernels: no sources found under {}",
            kernels_src.display()
        );
        return ExitCode::FAILURE;
    }

    let mut violations = Vec::new();
    let mut warnings = Vec::new();
    for path in &files {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint_kernels: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path.strip_prefix(root).unwrap_or(path);
        violations.extend(lint_source(rel, &text));
        warnings.extend(lint_unranged_phase(rel, &text));
        warnings.extend(lint_panic_paths(rel, &text));
    }

    for w in &warnings {
        println!("warning: {w}");
    }
    if violations.is_empty() {
        println!(
            "lint_kernels: {} files clean (uncosted-smem, counters-bypass), {} warning(s)",
            files.len(),
            warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "lint_kernels: {} violation(s), {} warning(s)",
            violations.len(),
            warnings.len()
        );
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints one file's source text. Pure so the rules are unit-testable.
fn lint_source(file: &Path, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    // Line number of the currently open allow region, if any.
    let mut open_region: Option<usize> = None;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let violation = |rule, message: String| Violation {
            file: file.to_path_buf(),
            line: lineno,
            rule,
            message,
        };

        if let Some(pos) = line.find(BEGIN_MARKER) {
            if open_region.is_some() {
                out.push(violation(
                    "uncosted-smem",
                    "nested begin-allow; close the previous region first".into(),
                ));
            }
            open_region = Some(lineno);
            // Demand a documented reason after the tag: `(...): <why>`.
            let rest = &line[pos + BEGIN_MARKER.len()..];
            let reason = rest
                .split_once("):")
                .map(|(_, r)| r.trim())
                .unwrap_or_default();
            if reason.len() < 10 {
                out.push(violation(
                    "uncosted-smem",
                    "begin-allow needs a reason: `begin-allow(tag): <why this is costed elsewhere>`"
                        .into(),
                ));
            }
            continue;
        }
        if line.contains(END_MARKER) {
            if open_region.take().is_none() {
                out.push(violation(
                    "uncosted-smem",
                    "end-allow without a matching begin-allow".into(),
                ));
            }
            continue;
        }

        let code = strip_line_comment(line);
        if open_region.is_none() {
            for call in UNCOSTED_CALLS {
                if code.contains(call) {
                    out.push(violation(
                        "uncosted-smem",
                        format!(
                            "raw `{call}…)` bypasses the cost model; use the WarpCtx \
                             collective or wrap in a documented allow region"
                        ),
                    ));
                }
            }
        }
        if let Some(field_and_rest) = find_counters_mutation(code) {
            out.push(violation(
                "counters-bypass",
                format!("direct write to `counters.{field_and_rest}`; charge cost through WarpCtx"),
            ));
        }
    }
    if let Some(start) = open_region {
        out.push(Violation {
            file: file.to_path_buf(),
            line: start,
            rule: "uncosted-smem",
            message: "allow region never closed with `smem-lint: end-allow`".into(),
        });
    }
    out
}

/// Warn-only rule: a kernel file that launches warps and runs
/// counter-costed loops, yet never opens a profiler range, leaves its
/// whole cost in the "unattributed" bucket of the hot-spot report.
/// Comments are stripped line-by-line before matching so doc prose
/// can't trip the detector; the match is file-granular because ranges
/// legitimately enclose whole phases rather than individual loops.
fn lint_unranged_phase(file: &Path, text: &str) -> Option<String> {
    let mut launches = false;
    let mut costed_loop_line = None;
    let mut has_loop = false;
    let mut ranged = false;
    for (i, line) in text.lines().enumerate() {
        let code = strip_line_comment(line);
        if code.contains("run_warps(") {
            launches = true;
        }
        if code.contains(".range(") {
            ranged = true;
        }
        let loopy = code.contains("while ") || code.contains("for ") || code.contains("loop {");
        if loopy {
            has_loop = true;
        }
        let costed =
            code.contains(".issue(") || code.contains("_gather(") || code.contains("_scatter(");
        if costed && has_loop && costed_loop_line.is_none() {
            costed_loop_line = Some(i + 1);
        }
    }
    match (launches, ranged, costed_loop_line) {
        (true, false, Some(line)) => Some(format!(
            "{}:{line}: [unranged-phase] kernel has counter-costed loops but no \
             profiler range; wrap phases in `w.range(\"name\", ...)` so the \
             hot-spot report can attribute their cost",
            file.display()
        )),
        _ => None,
    }
}

const PANIC_BEGIN: &str = "panic-lint: begin-allow(";
const PANIC_END: &str = "panic-lint: end-allow";

/// Panicking constructs that abort a simulated launch instead of
/// surfacing a typed `SimError`.
const PANIC_CALLS: [&str; 3] = ["panic!(", ".expect(", ".unwrap("];

/// Warn-only rule: panicking constructs in non-test kernel code defeat
/// the resilience engine — a panic unwinds the whole launch where a
/// recorded fault would have been retried or degraded. Scanning stops at
/// `#[cfg(test)]`; guarded unwraps opt out with a documented
/// `panic-lint` allow region (a region without a reason is itself
/// warned about, mirroring the smem lint).
fn lint_panic_paths(file: &Path, text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut allowed = false;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.contains("#[cfg(test)]") {
            break;
        }
        if let Some(pos) = line.find(PANIC_BEGIN) {
            allowed = true;
            let rest = &line[pos + PANIC_BEGIN.len()..];
            let reason = rest
                .split_once("):")
                .map(|(_, r)| r.trim())
                .unwrap_or_default();
            if reason.len() < 10 {
                out.push(format!(
                    "{}:{lineno}: [panic-path] begin-allow needs a reason: \
                     `begin-allow(tag): <why this cannot fire>`",
                    file.display()
                ));
            }
            continue;
        }
        if line.contains(PANIC_END) {
            allowed = false;
            continue;
        }
        if allowed {
            continue;
        }
        let code = strip_line_comment(line);
        for call in PANIC_CALLS {
            if code.contains(call) {
                out.push(format!(
                    "{}:{lineno}: [panic-path] `{call}…)` aborts the whole simulated \
                     launch; record a typed fault (`w.record_fault` / \
                     `w.record_capacity_overflow`) and limp, or wrap in a documented \
                     `panic-lint` allow region",
                    file.display()
                ));
            }
        }
    }
    out
}

/// Drops a trailing `// …` comment (good enough for lint purposes; the
/// kernel sources do not put `//` inside string literals on access
/// lines).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Returns the mutated field name when the line assigns through
/// `counters.<field>` (`=`, `+=`, `-=`, `*=`), ignoring comparisons.
fn find_counters_mutation(code: &str) -> Option<String> {
    let mut search = code;
    while let Some(pos) = search.find("counters.") {
        let after = &search[pos + "counters.".len()..];
        let field: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let rest = after[field.len()..].trim_start();
        let is_mutation = rest.starts_with("+=")
            || rest.starts_with("-=")
            || rest.starts_with("*=")
            || (rest.starts_with('=') && !rest.starts_with("=="));
        if !field.is_empty() && is_mutation {
            return Some(field);
        }
        search = after;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Vec<Violation> {
        lint_source(Path::new("test.rs"), text)
    }

    #[test]
    fn clean_code_passes() {
        let src = "let x = w.smem_gather(&arr, &idx);\nw.issue(1);\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn raw_access_is_flagged() {
        let src = "let v = cand_val.read(pos - 1);\narr.write(0, v);\narr.fill(0.0);\n";
        let out = lint(src);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|v| v.rule == "uncosted-smem"));
        assert_eq!(out[1].line, 2);
    }

    #[test]
    fn allow_region_suppresses_with_reason() {
        let src = "\
// smem-lint: begin-allow(serialized-emulation): cost charged via explicit issue below
let v = cand_val.read(0);
// smem-lint: end-allow
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_region_requires_reason_and_closure() {
        let missing_reason =
            "// smem-lint: begin-allow(serialized-emulation):\n// smem-lint: end-allow\n";
        assert_eq!(lint(missing_reason).len(), 1);
        let unclosed = "// smem-lint: begin-allow(x): a perfectly good reason\narr.read(0);\n";
        let out = lint(unclosed);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("never closed"));
        let stray_end = "// smem-lint: end-allow\n";
        assert_eq!(lint(stray_end).len(), 1);
    }

    #[test]
    fn counters_mutations_are_flagged_but_reads_pass() {
        assert!(lint("assert!(stats.counters.issues > 10);\n").is_empty());
        assert!(lint("let n = stats.counters.global_bytes;\n").is_empty());
        assert!(lint("if counters.issues == 3 {}\n").is_empty());
        let out = lint("self.counters.issues += 1;\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "counters-bypass");
        assert!(out[0].message.contains("issues"));
        assert_eq!(lint("w.counters.bank_conflict_extra = 0;\n").len(), 1);
    }

    #[test]
    fn comments_do_not_false_positive() {
        assert!(lint("// talk about arr.read(0) in prose\n").is_empty());
        assert!(lint("//! counters.\n").is_empty());
    }

    fn warn(text: &str) -> Option<String> {
        lint_unranged_phase(Path::new("test.rs"), text)
    }

    #[test]
    fn unranged_costed_loop_warns() {
        let src = "dev.run_warps(cfg);\nwhile i < n {\n    w.issue(1);\n}\n";
        let w = warn(src).expect("warns");
        assert!(w.contains("unranged-phase"));
        assert!(w.contains("test.rs:3"));
    }

    #[test]
    fn ranged_or_loopless_kernels_do_not_warn() {
        // Same loop, but wrapped in a range: clean.
        let ranged = "dev.run_warps(cfg);\nw.range(\"scan\", |w| {\n    while i < n {\n        w.issue(1);\n    }\n});\n";
        assert!(warn(ranged).is_none());
        // Elementwise kernel with no loop at all: clean.
        let elementwise = "dev.run_warps(cfg);\nw.issue(1);\nw.global_scatter(&out, &idx, &v);\n";
        assert!(warn(elementwise).is_none());
        // Loops without warp launches (host-side helper): clean.
        let host = "for x in 0..n {\n    v.push(x);\n}\nw.issue(1);\n";
        assert!(warn(host).is_none());
        // Prose mentioning the triggers is not code.
        let prose = "// dev.run_warps( then while  then .issue( in a comment\n";
        assert!(warn(prose).is_none());
    }

    fn panic_warn(text: &str) -> Vec<String> {
        lint_panic_paths(Path::new("test.rs"), text)
    }

    #[test]
    fn panic_paths_warn_in_kernel_code() {
        let src = "let v = opt.unwrap();\nlet w = res.expect(\"msg\");\npanic!(\"boom\");\n";
        let out = panic_warn(src);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|w| w.contains("panic-path")));
        assert!(out[0].contains("test.rs:1"));
    }

    #[test]
    fn panic_allow_region_and_test_module_are_skipped() {
        let src = "\
// panic-lint: begin-allow(guarded-unwrap): is_some checked on the same lane above
let v = opt.expect(\"set\");
// panic-lint: end-allow
#[cfg(test)]
mod tests { fn t() { x.unwrap(); } }
";
        assert!(panic_warn(src).is_empty());
    }

    #[test]
    fn panic_allow_region_requires_reason() {
        let src = "// panic-lint: begin-allow(tag):\nx.unwrap();\n// panic-lint: end-allow\n";
        let out = panic_warn(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("needs a reason"));
    }

    #[test]
    fn panic_prose_does_not_warn() {
        assert!(panic_warn("// never .unwrap( in kernels\n").is_empty());
    }
}
