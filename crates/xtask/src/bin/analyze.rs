//! `analyze` — the CI gate for kernel-source static analysis.
//!
//! Runs every rule in [`xtask::analyze::rules::RULES`] over the scan
//! set, diffs the findings against the committed suppression baseline,
//! and fails on anything the baseline does not cover — in *either*
//! direction: a fresh finding means new questionable code, a stale
//! baseline entry means an exemption outlived the code it excused.
//! Only deny-severity findings gate; warn findings are printed and
//! recorded in the `diag.v1` document but never fail the run. Every
//! current rule — including the serving-path `dropped-span` rule — is
//! deny severity, so the warn tier is presently empty.
//!
//! Gate mode (the CI `checks` job):
//!
//! ```text
//! cargo run -p xtask --bin analyze -- --json target/analyze.json
//! ```
//!
//! Baseline-refresh mode (via `scripts/update_analyze_baseline.sh`):
//!
//! ```text
//! cargo run -p xtask --bin analyze -- --write-baseline
//! ```
//!
//! Flags: `--root <dir>` overrides the workspace root (defaults to two
//! levels above the xtask manifest), `--baseline <path>` overrides the
//! baseline location (defaults to
//! `<root>/experiments_output/ANALYZE_baseline.json`), `--json <path>`
//! writes the findings as a `diag.v1` document (validated by
//! `check_bench_json --diag` in CI). A missing baseline file is treated
//! as empty: every finding is then fresh, so deleting the committed
//! baseline cannot launder findings through the gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::analyze::baseline::{write_baseline, Baseline};
use xtask::analyze::diag::{DiagReport, Severity};
use xtask::analyze::{analyze_root, rules::RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut write_mode = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" | "--baseline" | "--json" => {
                let Some(operand) = args.get(i + 1) else {
                    eprintln!("error: {} expects an operand", args[i]);
                    return ExitCode::FAILURE;
                };
                match args[i].as_str() {
                    "--root" => root = Some(PathBuf::from(operand)),
                    "--baseline" => baseline_path = Some(operand.clone()),
                    _ => json_path = Some(operand.clone()),
                }
                i += 2;
            }
            "--write-baseline" => {
                write_mode = true;
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    // crates/xtask -> workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(Path::parent)
            .expect("xtask sits two levels below the workspace root")
            .to_path_buf()
    });
    let baseline_path = baseline_path.unwrap_or_else(|| {
        root.join("experiments_output/ANALYZE_baseline.json")
            .to_string_lossy()
            .into_owned()
    });

    let mut analysis = match analyze_root(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if write_mode {
        write_baseline(&baseline_path, &analysis.findings, analysis.files_scanned);
        println!(
            "analyze: wrote baseline {baseline_path} ({} finding(s) accepted)",
            analysis.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let stale = if Path::new(&baseline_path).exists() {
        match Baseline::load(&baseline_path) {
            Ok(base) => base.apply(&mut analysis.findings),
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!("note: no baseline at {baseline_path}; every finding counts as fresh");
        Vec::new()
    };

    for d in analysis.findings.iter().filter(|d| !d.baselined) {
        println!("{d}");
    }
    for s in &stale {
        println!(
            "stale: baseline entry [{}] {} ({}) matches no current finding; \
             refresh with scripts/update_analyze_baseline.sh and commit the diff",
            s.rule, s.file, s.fingerprint
        );
    }

    let report = DiagReport {
        name: "analyze".to_string(),
        files_scanned: analysis.files_scanned,
        stale_baseline: stale.len(),
        findings: analysis.findings,
    };
    if let Some(path) = &json_path {
        report.write(path);
    }

    let fresh = report.fresh();
    let fresh_deny = report
        .findings
        .iter()
        .filter(|d| !d.baselined && d.severity == Severity::Deny)
        .count();
    let baselined = report.findings.len() - fresh;
    println!(
        "analyze: {} files scanned, {} rules, {} finding(s) \
         ({baselined} baselined, {fresh} fresh of which {fresh_deny} deny, \
         {} stale baseline entr{})",
        report.files_scanned,
        RULES.len(),
        report.findings.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" }
    );
    if fresh_deny > 0 || !stale.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
