//! Umbrella package holding the workspace integration tests and examples.
pub use sparse_dist as dist;
