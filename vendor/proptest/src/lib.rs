//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree shim
//! reimplements the slice of proptest the workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_map`], the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, [`Just`], and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics: each `proptest!` test runs its body for `cases` freshly
//! generated inputs from a generator seeded deterministically by the
//! test's name (override with the `PROPTEST_SEED` environment variable).
//! There is **no shrinking** — a failing case reports the panic from the
//! assertion itself, and reproducing it is a matter of rerunning with the
//! same seed, which is the default.

#![deny(missing_docs)]

use std::rc::Rc;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Creates a generator seeded from a test name (stable FNV-1a hash),
    /// honoring a `PROPTEST_SEED` environment-variable override.
    pub fn for_test(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return Self::from_seed(seed);
            }
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Runner configuration (only the case count is modeled).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator. Unlike upstream proptest there is no value tree and
/// no shrinking: a strategy simply produces values.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)))
    }

    /// Generates an intermediate value, builds a dependent strategy from
    /// it with `f`, and draws the final value from that strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)).generate(rng))
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate(rng))
    }
}

/// A reference-counted, type-erased strategy (the result of the
/// combinator methods). Cloning is cheap and shares the generator.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { gen_fn: Rc::new(f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Weighted choice between same-valued strategies (backs
/// [`prop_oneof!`]).
pub fn one_of<T: 'static>(choices: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!choices.is_empty(), "prop_oneof! of nothing");
    let total: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! with all-zero weights");
    BoxedStrategy::new(move |rng| {
        let mut pick = rng.below(total);
        for (w, s) in &choices {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    })
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Sizes accepted by [`vec`] / [`btree_map`]: a fixed length or a
    /// range of lengths.
    pub trait IntoSizeRange: Clone + 'static {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Vectors of `size` values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy::new(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| elem.generate(rng)).collect()
        })
    }

    /// Maps of up to `size` entries with keys from `keys` and values from
    /// `values` (duplicate keys collapse, as upstream).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl IntoSizeRange,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BoxedStrategy::new(move |rng| {
            let n = size.pick(rng);
            (0..n)
                .map(|_| (keys.generate(rng), values.generate(rng)))
                .collect()
        })
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies: `prop_oneof![2 => a, 3 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strategy:expr ),+ $(,)? ) => {
        $crate::one_of(vec![
            $( ( ($weight) as u32, $crate::Strategy::boxed($strategy) ) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::one_of(vec![
            $( ( 1u32, $crate::Strategy::boxed($strategy) ) ),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for each of `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!( @with_cases ($cfg).cases; $($rest)* );
    };
    ( @with_cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cases: u32 = $cases;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for _case in 0..cases {
                $( let $pat = $crate::Strategy::generate(&($strategy), &mut rng); )+
                $body
            }
        }
    )*};
    ( $($rest:tt)* ) => {
        $crate::proptest!( @with_cases $crate::ProptestConfig::default().cases; $($rest)* );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let s = (1usize..8, 0u32..4).prop_map(|(a, b)| a * 10 + b as usize);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((10..80).contains(&v));
        }
    }

    #[test]
    fn flat_map_uses_intermediate_value() {
        let mut rng = crate::TestRng::from_seed(2);
        let s = (1usize..5).prop_flat_map(|k| crate::collection::vec(0u32..10, k));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_exclusion() {
        let mut rng = crate::TestRng::from_seed(3);
        let s = prop_oneof![1 => Just(1u32), 0 => Just(2u32)];
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng), 1);
        }
    }

    #[test]
    fn btree_map_key_range_respected() {
        let mut rng = crate::TestRng::from_seed(4);
        let s = crate::collection::btree_map(0u32..32, 1u32..100, 0..12);
        for _ in 0..50 {
            let m = s.generate(&mut rng);
            assert!(m.len() <= 12);
            assert!(m.keys().all(|&k| k < 32));
            assert!(m.values().all(|&v| (1..100).contains(&v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(a in 0u32..10, (b, c) in (0u32..5, Just(7u8))) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
            prop_assert_eq!(c, 7u8);
        }
    }
}
