//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's `harness = false` benches
//! use — [`Criterion`], benchmark groups, [`BenchmarkId`], `iter`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple best-of-N wall-clock timer instead of criterion's statistical
//! machinery. Good enough to keep the benches runnable and comparable
//! run-to-run without a crates.io dependency.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `id`.
    pub fn bench_function<I: Display>(&mut self, id: I, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            best_seconds: f64::INFINITY,
        };
        f(&mut b);
        println!("  {id}: best {:.3} ms", b.best_seconds * 1e3);
    }

    /// Times `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: Display, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time its hot loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best_seconds: f64,
}

impl Bencher {
    /// Runs `f` for the configured number of samples, recording the best
    /// wall-clock time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let r = f();
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&r);
            if dt < self.best_seconds {
                self.best_seconds = dt;
            }
        }
    }
}

/// A `name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 1 + 2));
        group.bench_with_input(BenchmarkId::new("g", "x"), &5, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("sort", 128).to_string(), "sort/128");
    }
}
