//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-tree shim provides the (small) slice of `rand`'s API the workspace
//! actually uses: the [`Rng`] extension trait with `gen` / `gen_range` /
//! `gen_bool`, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generator is SplitMix64 — statistically solid for synthetic-data
//! generation, deterministic for a given seed, and dependency-free. The
//! streams differ from upstream `rand`'s `StdRng` (ChaCha12), so seeded
//! datasets differ numerically from what upstream would produce, but all
//! workspace code only relies on *seed-determinism*, never on specific
//! stream values.

#![deny(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the analog of
/// upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            let w: f32 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..500usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
