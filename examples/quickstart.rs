//! Quickstart — the Rust analog of the paper's Figure 2 snippets.
//!
//! The paper shows that, excluding data loading, GPU-accelerated sparse
//! distance calculations take two Python one-liners: a `NearestNeighbors`
//! fit/query and a `pairwise_distances` call. This example does both on a
//! tiny sparse term matrix.
//!
//! Run with: `cargo run --release --example quickstart`

use sparse_dist::sparse::CsrMatrix;
use sparse_dist::{pairwise_distances, Device, Distance, NearestNeighbors};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five "documents" over a ten-term vocabulary (TF-IDF-ish weights).
    #[rustfmt::skip]
    let x = CsrMatrix::<f32>::from_dense(5, 10, &[
        0.9, 0.0, 0.3, 0.0, 0.0, 0.0, 0.2, 0.0, 0.0, 0.0, // doc 0: terms 0,2,6
        0.8, 0.0, 0.4, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1, 0.0, // doc 1: close to doc 0
        0.0, 0.7, 0.0, 0.5, 0.0, 0.0, 0.0, 0.3, 0.0, 0.0, // doc 2: disjoint topic
        0.0, 0.6, 0.0, 0.6, 0.1, 0.0, 0.0, 0.2, 0.0, 0.0, // doc 3: close to doc 2
        0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, // doc 4: uniform
    ]);

    let device = Device::volta();

    // --- Figure 2, bottom: all-pairs distance matrix. ---------------
    let result = pairwise_distances(&device, &x, &x, Distance::Cosine)?;
    println!("cosine distance matrix (5x5):");
    for i in 0..5 {
        let row: Vec<String> = (0..5)
            .map(|j| format!("{:5.2}", result.distances.get(i, j)))
            .collect();
        println!("  [{}]", row.join(", "));
    }
    println!(
        "simulated GPU time: {:.3} µs across {} kernel launches\n",
        result.sim_seconds() * 1e6,
        result.launches.len()
    );

    // --- Figure 2, top: k-NN search. ---------------------------------
    let nn = NearestNeighbors::new(device, Distance::Cosine).fit(x.clone());
    let knn = nn.kneighbors(&x, 2)?;
    println!("2 nearest neighbors per document (self included):");
    for (i, (idx, dist)) in knn.indices.iter().zip(&knn.distances).enumerate() {
        println!("  doc {i}: neighbors {idx:?} at distances {dist:?}");
    }

    // Documents 0/1 and 2/3 pair up.
    assert_eq!(knn.indices[0][1], 1);
    assert_eq!(knn.indices[2][1], 3);
    println!("\nok: topical pairs (0,1) and (2,3) found each other");
    Ok(())
}
