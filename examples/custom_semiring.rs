//! Constructing new semirings — the Rust analog of the paper's Figure 3
//! C++ API.
//!
//! "The C++ API can be used to construct new semirings. Dot-product-based
//! semirings only need invoke the first function while NAMMs can be
//! constructed by invoking both." Here we build three semirings from
//! their monoids and run them through the hybrid kernel:
//!
//! 1. a support-overlap counter (annihilating, one pass),
//! 2. the Manhattan NAMM from Appendix A.1 (two passes), and
//! 3. the tropical (min-plus) semiring of Equation 1.
//!
//! Run with: `cargo run --release --example custom_semiring`

use sparse_dist::api::SemiringRunner;
use sparse_dist::sparse::CsrMatrix;
use sparse_dist::{Device, Monoid, Semiring};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    #[rustfmt::skip]
    let x = CsrMatrix::<f64>::from_dense(3, 5, &[
        1.0, 0.0, 1.0, 0.0, 2.0,
        0.0, 1.0, 1.0, 0.0, 0.0,
        3.0, 0.0, 0.0, 1.0, 2.0,
    ]);
    let runner = SemiringRunner::new(Device::volta());

    // 1. Overlap semiring: ⊗ = "both nonzero → 1", ⊕ = +. Annihilating,
    //    so a single intersection pass suffices (Figure 3's first entry
    //    point).
    let overlap = Semiring::annihilating(
        Monoid::new(
            |a: f64, b: f64| if a != 0.0 && b != 0.0 { 1.0 } else { 0.0 },
            1.0,
        ),
        Monoid::plus(),
    );
    let out = runner.run(&x, &x, &overlap)?;
    println!(
        "support overlap |nz(a) ∩ nz(b)| ({} pass):",
        out.launches.len()
    );
    print_matrix(&out.inner_terms);
    assert_eq!(out.launches.len(), 1);
    assert_eq!(out.inner_terms.get(0, 2), 2.0); // columns 0 and 4 shared

    // 2. Manhattan NAMM (Appendix A.1): ⊗ = |a − b| with id⊗ = 0, ⊕ = +.
    //    Non-annihilating, so the runner adds the commuted second pass
    //    (Figure 3's second entry point).
    let manhattan = Semiring::namm(
        Monoid::new(|a: f64, b: f64| (a - b).abs(), 0.0),
        Monoid::plus(),
    );
    let out = runner.run(&x, &x, &manhattan)?;
    println!("\nManhattan NAMM ({} passes):", out.launches.len());
    print_matrix(&out.inner_terms);
    assert_eq!(out.launches.len(), 2);
    assert_eq!(out.inner_terms.get(0, 1), 4.0); // |1-0|+|1-0|+|0-1|+|2-0|... = 1+1+0+2? -> columns 0,1,2,4

    // 3. Tropical semiring (Equation 1): (ℝ ∪ {+∞}, {min, +∞}, {+, 0}).
    //    Implicit zeros are the annihilator +∞ ("the re-interpretation of
    //    the zeroth element" the paper notes GraphBLAS needs), so the
    //    evaluation is intersection-only: a min-plus product over shared
    //    columns — two-hop shortest paths if rows are adjacency lists.
    let tropical = Semiring::<f64>::tropical();
    let out = runner.run(&x, &x, &tropical)?;
    println!("\ntropical min-plus ({} pass):", out.launches.len());
    print_matrix(&out.inner_terms);
    // Rows 0 and 2 share columns 0 (1+3) and 4 (2+2) → min = 4.
    assert_eq!(out.inner_terms.get(0, 2), 4.0);

    println!("\nok: all three custom semirings ran through the hybrid kernel");
    Ok(())
}

fn print_matrix(m: &sparse_dist::sparse::DenseMatrix<f64>) {
    for i in 0..m.rows() {
        let row: Vec<String> = (0..m.cols())
            .map(|j| {
                let v = m.get(i, j);
                if v.is_finite() {
                    format!("{v:5.1}")
                } else {
                    "    ∞".to_string()
                }
            })
            .collect();
        println!("  [{}]", row.join(", "));
    }
}
