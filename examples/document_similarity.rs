//! Document similarity on a NY Times-like TF-IDF corpus.
//!
//! The paper motivates the primitive with classic information-retrieval
//! workloads; its NY Times Bag-of-Words benchmark is the document-
//! similarity case. This example generates a synthetic corpus with the
//! same shape statistics (scaled down), runs a cosine k-NN query with
//! the paper's hybrid kernel in the hash-table configuration, and prints
//! both the retrieval results and the hardware-behaviour counters the
//! paper's §3 reasons about.
//!
//! Run with: `cargo run --release --example document_similarity`

use datasets::DatasetProfile;
use sparse_dist::{Device, Distance, NearestNeighbors, PairwiseOptions, SmemMode, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1/200-scale NY Times BoW replica: ~1.5K docs, ~500-term vocab,
    // the heavy-tailed degree distribution of Figure 1.
    let profile = DatasetProfile::nytimes_bow().scaled(0.005);
    let corpus = profile.generate(13);
    println!(
        "corpus: {} docs x {} terms, {} nonzeros (density {:.3}%)",
        corpus.rows(),
        corpus.cols(),
        corpus.nnz(),
        corpus.density() * 100.0
    );

    let options = PairwiseOptions {
        strategy: Strategy::HybridCooSpmv,
        smem_mode: SmemMode::Hash, // the §4.2 benchmark configuration
        resilience: None,
    };
    let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine)
        .with_options(options)
        .fit(corpus.clone());

    // Query the first 8 documents for their 5 nearest neighbors.
    let queries = corpus.slice_rows(0..8);
    let result = nn.kneighbors(&queries, 5)?;

    println!("\ntop-5 similar documents (cosine):");
    for (q, (idx, dist)) in result.indices.iter().zip(&result.distances).enumerate() {
        let pretty: Vec<String> = idx
            .iter()
            .zip(dist)
            .map(|(i, d)| format!("#{i} ({d:.3})"))
            .collect();
        println!("  query {q}: {}", pretty.join(", "));
        assert_eq!(idx[0], q, "a document must be most similar to itself");
    }

    println!(
        "\nsimulated GPU time: {:.3} ms over {} batch(es)",
        result.sim_seconds * 1e3,
        result.batches
    );
    println!(
        "peak device memory: {} KiB output + {} KiB workspace",
        result.peak_memory.output_bytes / 1024,
        result.peak_memory.workspace_bytes / 1024
    );
    Ok(())
}
