//! Single-cell RNA workflow (the scRNA benchmark of §4.1).
//!
//! Neighborhood graphs over cell-by-gene expression matrices are the
//! backbone of single-cell pipelines (UMAP/t-SNE embeddings, clustering)
//! — one of the downstream uses the paper calls out. Unlike the text
//! workloads, scRNA matrices are comparatively *dense* (7 %, with a
//! 501-nonzero minimum degree), which exercises completely different
//! kernel behaviour: every row pair intersects, so the cuSPARSE-style
//! output is fully dense (§4.3).
//!
//! This example builds the k-NN graph under three different geometries
//! (Euclidean, Correlation, Hellinger) and compares the NAMM-based
//! Manhattan on the same data.
//!
//! Run with: `cargo run --release --example single_cell`

use datasets::DatasetProfile;
use sparse_dist::{Device, Distance, NearestNeighbors};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1/500-scale atlas: ~130 cells x ~52 genes, density ~7%.
    let profile = DatasetProfile::scrna().scaled(0.002);
    let cells = profile.generate(99);
    println!(
        "cells: {} x {} genes, density {:.1}% (min degree {})",
        cells.rows(),
        cells.cols(),
        cells.density() * 100.0,
        sparse_dist::sparse::DegreeStats::of(&cells).min_degree,
    );

    let device = Device::volta();
    let k = 10;
    for distance in [
        Distance::Euclidean,
        Distance::Correlation,
        Distance::Hellinger,
        Distance::Manhattan, // NAMM: two semiring passes
    ] {
        let nn = NearestNeighbors::new(device.clone(), distance).fit(cells.clone());
        let result = nn.kneighbors(&cells, k)?;
        // Mean distance to the k-th neighbor: a coarse density measure
        // biologists eyeball before choosing k for UMAP.
        let mean_kth: f64 = result
            .distances
            .iter()
            .map(|row| row.last().copied().unwrap_or(0.0) as f64)
            .sum::<f64>()
            / cells.rows() as f64;
        println!(
            "  {:<12} sim {:7.3} ms | mean d_k {:.4}",
            distance.name(),
            result.sim_seconds * 1e3,
            mean_kth
        );
        // The nearest neighbor is at distance ~0 (itself, or an identical
        // twin cell that wins the deterministic lower-index tie-break).
        for (i, drow) in result.distances.iter().enumerate() {
            assert!(
                drow[0].abs() < 1e-4,
                "{distance}: cell {i} nearest distance {}",
                drow[0]
            );
        }
    }
    println!("\nok: neighborhood graphs built under all four geometries");
    Ok(())
}
