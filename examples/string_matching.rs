//! Fuzzy string matching with character n-grams (the SEC EDGAR
//! workload).
//!
//! The paper's SEC EDGAR benchmark vectorizes company names into
//! character n-grams and uses sparse distances for approximate string
//! matching. This example builds real 3-gram vectors for a list of
//! company names, then uses Jaccard distance — a Table 1 expanded-form
//! distance over the dot-product semiring — to find near-duplicate
//! names.
//!
//! Run with: `cargo run --release --example string_matching`

use sparse_dist::sparse::{CsrBuilder, CsrMatrix};
use sparse_dist::{Device, Distance, NearestNeighbors};
use std::collections::HashMap;

/// Vectorizes names into binary character-trigram indicator vectors over
/// a shared vocabulary.
fn trigram_matrix(names: &[&str]) -> (CsrMatrix<f32>, usize) {
    let mut vocab: HashMap<String, u32> = HashMap::new();
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for name in names {
        let padded = format!("  {}  ", name.to_lowercase());
        let chars: Vec<char> = padded.chars().collect();
        let mut cols: Vec<u32> = chars
            .windows(3)
            .map(|w| {
                let g: String = w.iter().collect();
                let next = vocab.len() as u32;
                *vocab.entry(g).or_insert(next)
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        rows.push(cols);
    }
    let k = vocab.len();
    let mut b = CsrBuilder::<f32>::new(names.len(), k);
    for (r, cols) in rows.iter().enumerate() {
        for &c in cols {
            b = b.push(r as u32, c, 1.0).expect("in bounds");
        }
    }
    (b.build().expect("valid"), k)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = [
        "Acme Corporation",
        "ACME Corp",
        "Acme Corp.",
        "Globex Corporation",
        "Globex Corp",
        "Initech LLC",
        "Initech Limited",
        "Umbrella Holdings",
        "Umbrela Holdings Inc", // typo on purpose
        "Stark Industries",
    ];
    let (matrix, vocab) = trigram_matrix(&names);
    println!(
        "{} names -> {} trigrams, {} nonzeros",
        names.len(),
        vocab,
        matrix.nnz()
    );

    let nn = NearestNeighbors::new(Device::volta(), Distance::Jaccard).fit(matrix.clone());
    let result = nn.kneighbors(&matrix, 2)?;

    println!("\nclosest match per name (Jaccard over trigrams):");
    for (i, name) in names.iter().enumerate() {
        let (j, d) = (result.indices[i][1], result.distances[i][1]);
        println!("  {name:<22} -> {:<22} (distance {d:.3})", names[j]);
    }

    // The near-duplicate variants must resolve to each other. (The full
    // "Acme Corporation" legitimately matches "Globex Corporation" —
    // they share the dominant token — so it is not asserted.)
    assert_eq!(result.indices[1][1], 2, "ACME Corp ↔ Acme Corp.");
    assert_eq!(result.indices[3][1], 4, "Globex variants cluster");
    assert_eq!(result.indices[8][1], 7, "typo matches its original");
    println!("\nok: name variants resolved to their canonical forms");
    Ok(())
}
