//! Building a k-NN connectivity graph at scale — index batching, device
//! selection, and the sparse adjacency output.
//!
//! This is the workload the paper positions itself under: "Dimensional
//! reduction approaches like t-SNE and UMAP that lack sparse input
//! support on GPUs without our method" consume exactly this k-NN graph.
//! The index is processed in row slabs whose per-slab top-k results are
//! merged — the mechanism that lets a fixed-memory device handle an
//! index larger than any single distance tile — with the k-selection
//! itself running as a device kernel.
//!
//! Run with: `cargo run --release --example knn_graph`

use datasets::DatasetProfile;
use sparse_dist::{
    kneighbors_graph, Device, Distance, GraphMode, NearestNeighbors, PairwiseOptions, Selection,
    SmemMode, Strategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A MovieLens-shaped ratings matrix: users × movies.
    let profile = DatasetProfile::movielens().scaled_with(0.004, 0.04);
    let ratings = profile.generate(21);
    println!(
        "ratings: {} users x {} movies, {} nonzeros",
        ratings.rows(),
        ratings.cols(),
        ratings.nnz()
    );

    let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine)
        .with_options(PairwiseOptions {
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
            resilience: None,
        })
        .with_selection(Selection::Device) // faiss-style on-device top-k
        .with_index_batch_rows(256) // slab the index; merge per-slab top-k
        .fit(ratings.clone());

    let k = 8;
    let result = nn.kneighbors(&ratings, k)?;
    println!(
        "k-NN query: {} tiles, {:.3} ms simulated",
        result.batches,
        result.sim_seconds * 1e3
    );

    // The two graph flavors downstream consumers want.
    let connectivity = kneighbors_graph(&result, ratings.rows(), GraphMode::Connectivity)?;
    let distances = kneighbors_graph(&result, ratings.rows(), GraphMode::Distance)?;
    println!(
        "connectivity graph: {}x{}, {} edges ({} per user)",
        connectivity.rows(),
        connectivity.cols(),
        connectivity.nnz(),
        connectivity.nnz() / ratings.rows().max(1)
    );
    println!(
        "distance graph: {} weighted edges (zero-distance self loops implicit)",
        distances.nnz()
    );

    // Sanity: every user connects to itself (distance 0 ⇒ first slot).
    for (u, row) in result.indices.iter().enumerate().take(5) {
        println!("user {u}: neighbors {:?}", &row[..k.min(row.len())]);
    }
    let mut mutual = 0;
    for u in 0..ratings.rows() {
        for &v in &result.indices[u] {
            if v != u && result.indices[v].contains(&u) {
                mutual += 1;
            }
        }
    }
    println!(
        "mutual (symmetric) edges: {} of {} — the asymmetry UMAP's fuzzy \
         union smooths out",
        mutual,
        connectivity.nnz()
    );
    Ok(())
}
