#!/usr/bin/env bash
# Refreshes every committed CI baseline in one pass:
#
#   * experiments_output/BENCH_baseline.json   — perf gate (±10%)
#   * experiments_output/ANALYZE_baseline.json — analyzer suppressions
#   * experiments_output/ANN_recall_floor.json — IVF recall gate
#
# Run this when a PR intentionally moves performance, accepts an
# analyzer finding, or changes approximate-search quality; review and
# commit the resulting diffs — the reviewed diff IS the acceptance
# decision. The CI `baseline-refresh` job (workflow_dispatch) runs this
# script on a runner and uploads the diff as a patch artifact, so the
# refresh can be produced without a local checkout.
#
# BENCH_SCALE (default 0.002) must match what the CI perf-gate and
# ann-recall-gate jobs pass — keep them in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-0.002}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

scripts/update_bench_baseline.sh

cargo run --locked -p xtask --bin analyze -- --write-baseline

cargo run --release --locked -p bench --bin ann_recall -- \
    --scale "$SCALE" --json "$TMP/ann.json"
cargo run --locked -p xtask --bin check_recall -- \
    --write-floor experiments_output/ANN_recall_floor.json "$TMP/ann.json"

echo "Refreshed BENCH_baseline.json, ANALYZE_baseline.json and" \
     "ANN_recall_floor.json — review and commit the diffs."
