#!/usr/bin/env bash
# Refreshes the committed static-analysis suppression baseline.
#
# Run this when a PR intentionally accepts an analyzer finding (rare —
# prefer a real fix or a documented allow region), or when fixing code
# has left baseline entries stale. Then commit the resulting
# experiments_output/ANALYZE_baseline.json diff; the reviewed diff IS
# the acceptance decision, exactly like the perf-gate baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --locked -p xtask --bin analyze -- --write-baseline

echo "Refreshed experiments_output/ANALYZE_baseline.json — review and commit the diff."
