#!/usr/bin/env bash
# Refreshes the committed perf-gate baseline.
#
# Run this when a PR intentionally changes simulated performance
# (cost-model edits, kernel strategy changes, new counters), then
# commit the resulting experiments_output/BENCH_baseline.json diff.
# The commands below are exactly what the CI `perf-gate` job runs
# before diffing — keep the two in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-0.002}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo run --release --locked -p bench --bin counters_report -- \
    --scale "$SCALE" --json "$TMP/counters.json"
cargo run --release --locked -p bench --bin shard_scaling -- \
    --scale "$SCALE" --json "$TMP/shard.json"
cargo run --release --locked -p bench --bin serve_throughput -- \
    --scale "$SCALE" --json "$TMP/serve.json"
cargo run --release --locked -p bench --bin serve_fleet -- \
    --scale "$SCALE" --json "$TMP/fleet.json"
cargo run --release --locked -p bench --bin ann_recall -- \
    --scale "$SCALE" --json "$TMP/ann.json"
cargo run --release --locked -p bench --bin serve_ingest -- \
    --scale "$SCALE" --json "$TMP/ingest.json"
cargo run --locked -p xtask --bin compare_bench -- \
    --write-baseline experiments_output/BENCH_baseline.json \
    "$TMP/counters.json" "$TMP/shard.json" "$TMP/serve.json" "$TMP/fleet.json" \
    "$TMP/ann.json" "$TMP/ingest.json"

echo "Refreshed experiments_output/BENCH_baseline.json — review and commit the diff."
