//! Cross-crate integration: every dataset profile × every distance ×
//! every strategy, validated against the dense closed-form reference.

use baseline::cusparse::{baseline_supports, csrgemm_pairwise};
use baseline::CpuBruteForce;
use datasets::DatasetProfile;
use semiring::reference::dense_pairwise;
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;
use sparse_dist::{Device, PairwiseOptions, SmemMode, Strategy};

/// Tiny replicas so the exhaustive product of cases stays fast.
fn tiny_profiles() -> Vec<CsrMatrix<f32>> {
    datasets::all_profiles()
        .iter()
        .enumerate()
        .map(|(i, p)| p.scaled_with(0.0006, 0.01).generate(100 + i as u64))
        .collect()
}

fn to_f64(m: &CsrMatrix<f32>) -> CsrMatrix<f64> {
    CsrMatrix::from_parts(
        m.rows(),
        m.cols(),
        m.indptr().to_vec(),
        m.indices().to_vec(),
        m.values().iter().map(|&v| v as f64).collect(),
    )
    .expect("valid structure is preserved")
}

#[test]
fn every_strategy_matches_reference_on_every_profile_and_distance() {
    let dev = Device::volta();
    let params = DistanceParams { minkowski_p: 3.0 };
    for m32 in tiny_profiles() {
        let m = to_f64(&m32);
        let queries = m.slice_rows(0..m.rows().min(12));
        for distance in Distance::ALL {
            let want = dense_pairwise(&queries, &m, distance, &params);
            for strategy in [
                Strategy::HybridCooSpmv,
                Strategy::NaiveCsr,
                Strategy::ExpandSortContract,
            ] {
                let opts = PairwiseOptions {
                    strategy,
                    smem_mode: SmemMode::Auto,
                    resilience: None,
                };
                let got = sparse_dist::pairwise_distances_with(
                    &dev, &queries, &m, distance, &params, &opts,
                )
                .unwrap_or_else(|e| panic!("{distance} via {}: {e}", strategy.name()));
                let diff = got.distances.max_abs_diff(&want);
                assert!(
                    diff < 1e-6,
                    "{distance} via {} on {}x{}: max diff {diff}",
                    strategy.name(),
                    m.rows(),
                    m.cols()
                );
            }
        }
    }
}

#[test]
fn smem_modes_agree_on_every_profile() {
    let dev = Device::volta();
    let params = DistanceParams::default();
    for m32 in tiny_profiles() {
        let m = to_f64(&m32);
        let queries = m.slice_rows(0..m.rows().min(8));
        for distance in [Distance::Cosine, Distance::Manhattan, Distance::Canberra] {
            let mut results = Vec::new();
            for mode in [SmemMode::Dense, SmemMode::Hash, SmemMode::Bloom] {
                let opts = PairwiseOptions {
                    strategy: Strategy::HybridCooSpmv,
                    smem_mode: mode,
                    resilience: None,
                };
                let got = sparse_dist::pairwise_distances_with(
                    &dev, &queries, &m, distance, &params, &opts,
                )
                .unwrap_or_else(|e| panic!("{distance} via {mode:?}: {e}"));
                results.push(got.distances);
            }
            for pair in results.windows(2) {
                assert!(
                    pair[0].max_abs_diff(&pair[1]) < 1e-9,
                    "{distance}: shared-memory modes disagree"
                );
            }
        }
    }
}

#[test]
fn gpu_cpu_and_csrgemm_baselines_agree() {
    let dev = Device::volta();
    let params = DistanceParams::default();
    let cpu = CpuBruteForce::new(4);
    let m = to_f64(
        &DatasetProfile::nytimes_bow()
            .scaled_with(0.001, 0.02)
            .generate(5),
    );
    let queries = m.slice_rows(0..10);
    for distance in Distance::ALL {
        let gpu = sparse_dist::pairwise_distances(&dev, &queries, &m, distance)
            .unwrap_or_else(|e| panic!("{distance}: {e}"));
        let host = cpu.pairwise(&queries, &m, distance, &params);
        assert!(
            gpu.distances.max_abs_diff(&host) < 1e-6,
            "{distance}: GPU vs CPU disagree"
        );
        if baseline_supports(distance) {
            let gemm = csrgemm_pairwise(&dev, &queries, &m, distance, &params);
            assert!(
                gemm.distances.max_abs_diff(&host) < 1e-6,
                "{distance}: csrgemm vs CPU disagree"
            );
        }
    }
}

#[test]
fn bray_curtis_extension_through_the_public_api() {
    // The 16th distance (not in Table 1): full pipeline agreement plus
    // domain validation.
    let dev = Device::volta();
    let params = DistanceParams::default();
    let m = to_f64(&DatasetProfile::scrna().scaled_with(0.002, 0.01).generate(9));
    let q = m.slice_rows(0..m.rows().min(6));
    sparse_dist::validate_input(Distance::BrayCurtis, &m).expect("counts are non-negative");
    let got = sparse_dist::pairwise_distances(&dev, &q, &m, Distance::BrayCurtis).expect("runs");
    let want = dense_pairwise(&q, &m, Distance::BrayCurtis, &params);
    assert!(got.distances.max_abs_diff(&want) < 1e-6);
    // Negative data is rejected up front.
    let neg = CsrMatrix::<f64>::from_dense(1, 2, &[-1.0, 2.0]);
    assert!(sparse_dist::validate_input(Distance::BrayCurtis, &neg).is_err());
}

#[test]
fn knn_is_consistent_between_gpu_and_cpu_on_profiles() {
    let dev = Device::volta();
    let params = DistanceParams::default();
    for m32 in tiny_profiles() {
        let m = to_f64(&m32);
        if m.rows() < 12 {
            continue;
        }
        let queries = m.slice_rows(0..6);
        for distance in [Distance::Euclidean, Distance::Manhattan, Distance::Cosine] {
            let nn = sparse_dist::NearestNeighbors::new(dev.clone(), distance).fit(m.clone());
            let got = nn.kneighbors(&queries, 3).expect("query ok");
            let want = CpuBruteForce::new(2).knn(&queries, &m, 3, distance, &params);
            for (q, row) in got.distances.iter().enumerate() {
                for (slot, d) in row.iter().enumerate() {
                    // Distances must match; indices may differ on exact
                    // ties, so compare by distance value.
                    assert!(
                        (d - want[q][slot].1).abs() < 1e-6,
                        "{distance} query {q} slot {slot}: {d} vs {}",
                        want[q][slot].1
                    );
                }
            }
        }
    }
}
