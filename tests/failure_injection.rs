//! Failure-path integration tests: capacity overflows, degenerate
//! inputs, and configuration errors must fail loudly and predictably.

use gpu_sim::FaultPlan;
use semiring::reference::dense_pairwise;
use semiring::{Distance, DistanceParams};
use sparse::{CsrMatrix, SparseError};
use sparse_dist::{Device, KernelError, PairwiseOptions, SimError, SmemMode, Strategy};

#[test]
fn shape_mismatch_is_a_typed_error() {
    let dev = Device::volta();
    let a = CsrMatrix::<f32>::zeros(4, 10);
    let b = CsrMatrix::<f32>::zeros(4, 11);
    let err = sparse_dist::pairwise_distances(&dev, &a, &b, Distance::Cosine);
    assert!(matches!(err, Err(KernelError::ShapeMismatch { .. })));
}

#[test]
fn esc_overflow_reports_shared_memory_requirement() {
    // One row with 40K nonzeros cannot fit two copies in 96 KiB.
    let dev = Device::volta();
    let trips: Vec<(u32, u32, f32)> = (0..40_000).map(|c| (0, c, 1.0)).collect();
    let a = CsrMatrix::from_triplets(1, 40_000, &trips).expect("valid");
    let opts = PairwiseOptions {
        strategy: Strategy::ExpandSortContract,
        smem_mode: SmemMode::Auto,
        resilience: None,
    };
    let err = sparse_dist::pairwise_distances_with(
        &dev,
        &a,
        &a,
        Distance::Manhattan,
        &DistanceParams::default(),
        &opts,
    );
    match err {
        Err(KernelError::SharedMemoryExceeded {
            strategy,
            required,
            available,
        }) => {
            assert_eq!(strategy, "expand-sort-contract");
            assert!(required > available);
        }
        other => panic!("expected SharedMemoryExceeded, got {other:?}"),
    }
}

#[test]
fn forced_dense_mode_rejects_high_dimensionality() {
    let dev = Device::volta();
    let a = CsrMatrix::<f32>::from_triplets(2, 500_000, &[(0, 1, 1.0), (1, 499_999, 2.0)])
        .expect("valid");
    let opts = PairwiseOptions {
        strategy: Strategy::HybridCooSpmv,
        smem_mode: SmemMode::Dense,
        resilience: None,
    };
    let err = sparse_dist::pairwise_distances_with(
        &dev,
        &a,
        &a,
        Distance::Cosine,
        &DistanceParams::default(),
        &opts,
    );
    assert!(matches!(err, Err(KernelError::UnsupportedSmemMode(_))));
}

#[test]
fn auto_mode_handles_high_dimensionality_by_hashing() {
    // The same input succeeds in Auto (hash) mode — §3.3.2's point.
    let dev = Device::volta();
    let a = CsrMatrix::<f32>::from_triplets(2, 500_000, &[(0, 1, 1.0), (1, 499_999, 2.0)])
        .expect("valid");
    let got = sparse_dist::pairwise_distances(&dev, &a, &a, Distance::Cosine)
        .expect("hash mode handles any dimensionality");
    assert!(got.distances.get(0, 0).abs() < 1e-6);
    assert!((got.distances.get(0, 1) - 1.0).abs() < 1e-6); // disjoint
}

#[test]
fn high_degree_rows_partition_instead_of_failing() {
    // A row wider than the hash capacity (3072 entries at 48 KiB / f32)
    // must be partitioned (§3.3.3), not rejected.
    let dev = Device::volta();
    let trips: Vec<(u32, u32, f32)> = (0..8000).map(|c| (0, c * 3, 1.0)).collect();
    let mut all = trips.clone();
    all.push((1, 0, 5.0));
    all.push((1, 3, 2.0));
    let a = CsrMatrix::from_triplets(2, 24_000, &all).expect("valid");
    let opts = PairwiseOptions {
        strategy: Strategy::HybridCooSpmv,
        smem_mode: SmemMode::Hash,
        resilience: None,
    };
    let got = sparse_dist::pairwise_distances_with(
        &dev,
        &a,
        &a,
        Distance::Manhattan,
        &DistanceParams::default(),
        &opts,
    )
    .expect("partitioning handles high-degree rows");
    // Reference: row0 vs row1 Manhattan = |1-5| + |1-2| + 7998 ones.
    let want = 4.0 + 1.0 + 7998.0;
    assert!(
        (got.distances.get(0, 1) - want).abs() < 1e-3,
        "got {}",
        got.distances.get(0, 1)
    );
}

#[test]
fn empty_matrices_and_k_zero_are_handled() {
    let dev = Device::volta();
    let a = CsrMatrix::<f64>::zeros(3, 5);
    let nn = sparse_dist::NearestNeighbors::new(dev, Distance::Euclidean).fit(a.clone());
    let res = nn.kneighbors(&a, 0).expect("k=0 is legal");
    assert!(res.indices.iter().all(Vec::is_empty));
    let res = nn.kneighbors(&a, 10).expect("k>n clamps");
    assert!(res.indices.iter().all(|r| r.len() == 3));
}

/// Small but non-trivial input every strategy (including ESC's
/// shared-memory plan) can handle fault-free.
fn fault_probe_matrix() -> CsrMatrix<f64> {
    let mut data = vec![0.0; 8 * 12];
    for r in 0..8 {
        for c in 0..12 {
            if (r * 5 + c * 3) % 3 == 0 {
                data[r * 12 + c] = 1.0 + (r as f64) / 4.0 + (c as f64) / 30.0;
            }
        }
    }
    CsrMatrix::from_dense(8, 12, &data)
}

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::HybridCooSpmv,
    Strategy::NaiveCsr,
    Strategy::NaiveCsrShared,
    Strategy::ExpandSortContract,
];

#[test]
fn injected_transient_faults_surface_typed_errors_for_every_strategy() {
    // At 1000‰ the very first launch of every pipeline fails, for both
    // an expanded distance (Euclidean) and a pure-NAMM one (Manhattan).
    let m = fault_probe_matrix();
    for strategy in ALL_STRATEGIES {
        for distance in [Distance::Euclidean, Distance::Manhattan] {
            let dev = Device::volta()
                .with_fault_plan(FaultPlan::seeded(7).with_transient_launch_failures(1000));
            let err = sparse_dist::pairwise_distances_with(
                &dev,
                &m,
                &m,
                distance,
                &DistanceParams::default(),
                &PairwiseOptions {
                    strategy,
                    smem_mode: SmemMode::Auto,
                    resilience: None,
                },
            );
            assert!(
                matches!(
                    err,
                    Err(KernelError::Launch(SimError::TransientFault { .. }))
                ),
                "{strategy:?}/{distance}: {err:?}"
            );
        }
    }
}

#[test]
fn injected_smem_alloc_failure_spares_only_the_smem_free_pipeline() {
    // Every strategy except NaiveCsr allocates shared memory, so a
    // forced allocator failure must surface as a typed capacity
    // overflow — while the naive CSR pipeline (global memory only)
    // completes with correct distances.
    let m = fault_probe_matrix();
    let want = dense_pairwise(&m, &m, Distance::Manhattan, &DistanceParams::default());
    for strategy in ALL_STRATEGIES {
        let dev =
            Device::volta().with_fault_plan(FaultPlan::seeded(3).with_smem_alloc_failures(1000));
        let got = sparse_dist::pairwise_distances_with(
            &dev,
            &m,
            &m,
            Distance::Manhattan,
            &DistanceParams::default(),
            &PairwiseOptions {
                strategy,
                smem_mode: SmemMode::Auto,
                resilience: None,
            },
        );
        if strategy == Strategy::NaiveCsr {
            let got = got.expect("the naive CSR pipeline never allocates shared memory");
            assert!(got.distances.max_abs_diff(&want) < 1e-6);
        } else {
            match got {
                Err(KernelError::Launch(SimError::CapacityOverflow { resource, .. })) => {
                    assert_eq!(resource, "smem-allocator", "{strategy:?}");
                }
                other => panic!("{strategy:?}: expected smem-allocator overflow, got {other:?}"),
            }
        }
    }
}

#[test]
fn injected_hash_overflow_hits_only_the_hash_table_plan() {
    // The overflow injector poisons shared-memory hash inserts; only the
    // hybrid strategy forced into Hash mode owns one. Everything else
    // completes untouched.
    let m = fault_probe_matrix();
    let want = dense_pairwise(&m, &m, Distance::Euclidean, &DistanceParams::default());
    for strategy in ALL_STRATEGIES {
        let dev = Device::volta().with_fault_plan(FaultPlan::seeded(5).with_hash_overflows(1000));
        let smem_mode = if strategy == Strategy::HybridCooSpmv {
            SmemMode::Hash
        } else {
            SmemMode::Auto
        };
        let got = sparse_dist::pairwise_distances_with(
            &dev,
            &m,
            &m,
            Distance::Euclidean,
            &DistanceParams::default(),
            &PairwiseOptions {
                strategy,
                smem_mode,
                resilience: None,
            },
        );
        if strategy == Strategy::HybridCooSpmv {
            match got {
                Err(KernelError::Launch(SimError::CapacityOverflow { resource, .. })) => {
                    assert_eq!(resource, "smem-hash-table");
                }
                other => panic!("expected hash-table overflow, got {other:?}"),
            }
        } else {
            let got = got.expect("no hash table in this pipeline");
            assert!(got.distances.max_abs_diff(&want) < 1e-6, "{strategy:?}");
        }
    }
}

#[test]
fn sparse_constructors_reject_malformed_input() {
    assert!(matches!(
        CsrMatrix::<f32>::from_parts(1, 2, vec![0, 3], vec![0, 1], vec![1.0, 2.0]),
        Err(SparseError::InvalidIndptr(_))
    ));
    assert!(matches!(
        CsrMatrix::<f32>::from_triplets(1, 1, &[(0, 5, 1.0)]),
        Err(SparseError::ColumnOutOfBounds { .. })
    ));
}
