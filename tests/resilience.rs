//! End-to-end resilience tests: the retry + fallback-cascade engine
//! against every `sim-fault` class, checked for byte-identical outputs
//! and deterministic replay.
//!
//! CI hooks (the `fault-matrix` job):
//!
//! * `RESILIENCE_SANITIZER=fail|warn` runs every launch under the
//!   corresponding sanitizer mode, so fault paths are also
//!   memcheck/racecheck-clean.
//! * `RESILIENCE_REPORT_JSON=<dir>` writes one `resilience.v1` JSON
//!   artifact per test describing the reports the engine produced.

use proptest::prelude::*;
use semiring::reference::dense_pairwise;
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;
use sparse_dist::{
    Device, KernelError, NearestNeighbors, PairwiseOptions, ResiliencePolicy, ResilienceReport,
    SanitizerMode, SimError, SmemMode, Strategy,
};

use gpu_sim::FaultPlan;
use proptest::Strategy as PropStrategy;

/// Test device honoring the `RESILIENCE_SANITIZER` CI hook.
fn device() -> Device {
    let dev = Device::volta();
    match std::env::var("RESILIENCE_SANITIZER").as_deref() {
        Ok("fail") => dev.with_sanitizer(SanitizerMode::Fail),
        Ok("warn") => dev.with_sanitizer(SanitizerMode::Warn),
        _ => dev,
    }
}

/// Writes the reports a test produced as a `resilience.v1` JSON artifact
/// when the `RESILIENCE_REPORT_JSON` CI hook names a directory.
fn dump_reports(test: &str, reports: &[&ResilienceReport]) {
    let Ok(dir) = std::env::var("RESILIENCE_REPORT_JSON") else {
        return;
    };
    use gpu_sim::json_escape;
    use std::fmt::Write as _;
    let mut s = format!(
        "{{\"schema\":\"resilience.v1\",\"test\":\"{}\",\"reports\":[",
        json_escape(test)
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n  {{\"attempts\":{},\"downgraded\":{},\"final_strategy\":\"{}\",\
             \"final_smem\":\"{:?}\",\"backoff_seconds\":{},\"faults_absorbed\":[",
            r.attempts,
            r.downgraded,
            json_escape(r.final_strategy.name()),
            r.final_smem,
            r.backoff_seconds,
        );
        for (j, f) in r.faults_absorbed.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", json_escape(f));
        }
        s.push_str("]}");
    }
    s.push_str("\n]}\n");
    std::fs::create_dir_all(&dir).expect("artifact dir");
    std::fs::write(format!("{dir}/{test}.json"), s).expect("artifact write");
}

fn sample() -> CsrMatrix<f64> {
    let mut data = vec![0.0; 12 * 20];
    for r in 0..12 {
        for c in 0..20 {
            if (r * 7 + c * 3) % 4 == 0 {
                data[r * 20 + c] = 1.0 + (r as f64) / 8.0 + (c as f64) / 50.0;
            }
        }
    }
    CsrMatrix::from_dense(12, 20, &data)
}

fn run(
    dev: &Device,
    m: &CsrMatrix<f64>,
    strategy: Strategy,
    smem_mode: SmemMode,
    resilience: Option<ResiliencePolicy>,
) -> Result<sparse_dist::PairwiseResult<f64>, KernelError> {
    sparse_dist::pairwise_distances_with(
        dev,
        m,
        m,
        Distance::Euclidean,
        &DistanceParams::default(),
        &PairwiseOptions {
            strategy,
            smem_mode,
            resilience,
        },
    )
}

#[test]
fn policy_on_a_clean_device_reports_one_attempt() {
    let m = sample();
    let clean = run(&device(), &m, Strategy::HybridCooSpmv, SmemMode::Hash, None).expect("clean");
    assert!(clean.resilience.is_none(), "no policy, no report");
    let r = run(
        &device(),
        &m,
        Strategy::HybridCooSpmv,
        SmemMode::Hash,
        Some(ResiliencePolicy::default()),
    )
    .expect("clean with policy");
    let rep = r.resilience.expect("policy produces a report");
    assert_eq!(rep.attempts, 1);
    assert!(!rep.downgraded);
    assert!(rep.faults_absorbed.is_empty());
    assert_eq!(rep.final_strategy, Strategy::HybridCooSpmv);
    assert_eq!(
        r.distances.as_slice(),
        clean.distances.as_slice(),
        "policy bookkeeping must not perturb outputs"
    );
    dump_reports("policy_on_a_clean_device_reports_one_attempt", &[&rep]);
}

#[test]
fn transient_faults_retry_to_byte_identical_distances() {
    let m = sample();
    let clean = run(&device(), &m, Strategy::HybridCooSpmv, SmemMode::Hash, None).expect("clean");
    let dev = device().with_fault_plan(FaultPlan::seeded(5).with_transient_launch_failures(200));
    let r = run(
        &dev,
        &m,
        Strategy::HybridCooSpmv,
        SmemMode::Hash,
        Some(ResiliencePolicy::with_retries(40)),
    )
    .expect("retries absorb transient faults");
    let rep = r.resilience.expect("report");
    assert!(rep.attempts >= 1);
    assert!(!rep.downgraded, "transient faults never change the plan");
    assert_eq!(r.distances.as_slice(), clean.distances.as_slice());
    dump_reports(
        "transient_faults_retry_to_byte_identical_distances",
        &[&rep],
    );
}

#[test]
fn ecc_bit_flips_on_uploaded_buffers_are_absorbed() {
    let m = sample();
    let clean = run(&device(), &m, Strategy::HybridCooSpmv, SmemMode::Hash, None).expect("clean");
    let dev = device().with_fault_plan(FaultPlan::seeded(9).with_bit_flips("csr.values", 200));
    let r = run(
        &dev,
        &m,
        Strategy::HybridCooSpmv,
        SmemMode::Hash,
        Some(ResiliencePolicy::with_retries(40)),
    )
    .expect("ECC events absorb as retries");
    let rep = r.resilience.expect("report");
    assert_eq!(
        r.distances.as_slice(),
        clean.distances.as_slice(),
        "ECC model never corrupts data, so retried runs are byte-identical"
    );
    dump_reports("ecc_bit_flips_on_uploaded_buffers_are_absorbed", &[&rep]);
}

#[test]
fn injected_hash_overflow_degrades_and_stays_correct() {
    let m = sample();
    let want = dense_pairwise(&m, &m, Distance::Euclidean, &DistanceParams::default());
    let dev = device().with_fault_plan(FaultPlan::seeded(2).with_hash_overflows(1000));
    let r = run(
        &dev,
        &m,
        Strategy::HybridCooSpmv,
        SmemMode::Hash,
        Some(ResiliencePolicy::default()),
    )
    .expect("cascade absorbs the overflow");
    let rep = r.resilience.expect("report");
    assert!(rep.downgraded, "hash overflow must force a re-plan");
    assert_ne!(
        (rep.final_strategy, rep.final_smem),
        (Strategy::HybridCooSpmv, SmemMode::Hash),
        "final plan must differ from the poisoned one"
    );
    assert!(
        r.distances.max_abs_diff(&want) < 1e-9,
        "degraded plan is still correct"
    );
    dump_reports("injected_hash_overflow_degrades_and_stays_correct", &[&rep]);
}

#[test]
fn forced_dense_overflow_walks_the_cascade() {
    // Dense shared-memory rows over 500K columns cannot fit; Auto would
    // refuse up front with UnsupportedSmemMode — the cascade re-plans.
    let m = CsrMatrix::<f64>::from_triplets(
        3,
        500_000,
        &[
            (0, 1, 1.0),
            (0, 499_999, 2.0),
            (1, 7, 3.0),
            (2, 499_999, 1.5),
        ],
    )
    .expect("valid");
    let want = dense_pairwise(&m, &m, Distance::Euclidean, &DistanceParams::default());
    let r = run(
        &device(),
        &m,
        Strategy::HybridCooSpmv,
        SmemMode::Dense,
        Some(ResiliencePolicy::default()),
    )
    .expect("cascade finds a plan that fits");
    let rep = r.resilience.expect("report");
    assert!(rep.downgraded);
    assert!(!rep.faults_absorbed.is_empty());
    assert!(r.distances.max_abs_diff(&want) < 1e-6);
    dump_reports("forced_dense_overflow_walks_the_cascade", &[&rep]);
}

#[test]
fn disabled_cascade_surfaces_the_typed_capacity_error() {
    let m = sample();
    let dev = device().with_fault_plan(FaultPlan::seeded(2).with_hash_overflows(1000));
    let err = run(
        &dev,
        &m,
        Strategy::HybridCooSpmv,
        SmemMode::Hash,
        Some(ResiliencePolicy::default().without_fallback()),
    )
    .expect_err("no cascade, no rescue");
    match err {
        KernelError::Launch(SimError::CapacityOverflow { resource, .. }) => {
            assert_eq!(resource, "smem-hash-table");
        }
        other => panic!("expected CapacityOverflow, got {other}"),
    }
}

/// Whether a clean (fault-free, no-policy) run of `plan` completes
/// under a device-wide watchdog budget.
fn passes_with_budget(m: &CsrMatrix<f64>, plan: (Strategy, SmemMode), budget: u64) -> bool {
    match run(&device().with_watchdog(budget), m, plan.0, plan.1, None) {
        Ok(_) => true,
        Err(KernelError::Launch(SimError::WatchdogTimeout { .. })) => false,
        Err(other) => panic!("watchdog probe hit an unrelated error: {other}"),
    }
}

/// Smallest per-block issue budget under which `plan` completes.
fn min_passing_budget(m: &CsrMatrix<f64>, plan: (Strategy, SmemMode)) -> u64 {
    let mut hi = 64u64;
    while !passes_with_budget(m, plan, hi) {
        hi *= 2;
        assert!(hi < 1 << 40, "plan never fits any watchdog budget");
    }
    let mut lo = 1u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if passes_with_budget(m, plan, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

#[test]
fn watchdog_timeout_degrades_through_the_policy() {
    // Measure the per-block issue needs of every plan in the cascade,
    // then arm the watchdog with a budget that provably times out some
    // requested plan while a downstream plan still fits: the policy must
    // convert the WatchdogTimeout into a degradation, not a failure.
    let m = sample();
    let want = dense_pairwise(&m, &m, Distance::Euclidean, &DistanceParams::default());
    let chain = [
        (Strategy::HybridCooSpmv, SmemMode::Hash),
        (Strategy::HybridCooSpmv, SmemMode::Bloom),
        (Strategy::NaiveCsrShared, SmemMode::Auto),
        (Strategy::NaiveCsr, SmemMode::Auto),
    ];
    let mins: Vec<u64> = chain.iter().map(|&p| min_passing_budget(&m, p)).collect();
    let start = (0..chain.len() - 1)
        .find(|&i| mins[i + 1..].iter().any(|&down| down < mins[i]))
        .unwrap_or_else(|| {
            panic!("no plan is strictly hungrier than its fallbacks: budgets {mins:?}")
        });
    let budget = mins[start] - 1;

    let dev = device().with_watchdog(budget);
    let r = run(
        &dev,
        &m,
        chain[start].0,
        chain[start].1,
        Some(ResiliencePolicy::default()),
    )
    .expect("cascade lands on a plan that fits the budget");
    let rep = r.resilience.expect("report");
    assert!(rep.downgraded, "budgets {mins:?}, armed {budget}");
    assert!(
        rep.faults_absorbed.iter().any(|f| f.contains("watchdog")),
        "absorbed faults must name the watchdog: {:?}",
        rep.faults_absorbed
    );
    assert!(r.distances.max_abs_diff(&want) < 1e-9);
    dump_reports("watchdog_timeout_degrades_through_the_policy", &[&rep]);
}

#[test]
fn same_seed_replays_identical_reports_and_outputs() {
    let m = sample();
    let go = || {
        let dev = device().with_fault_plan(
            FaultPlan::seeded(31)
                .with_transient_launch_failures(150)
                .with_hash_overflows(300),
        );
        run(
            &dev,
            &m,
            Strategy::HybridCooSpmv,
            SmemMode::Hash,
            Some(ResiliencePolicy::with_retries(40)),
        )
        .expect("policy absorbs the mix")
    };
    let a = go();
    let b = go();
    assert_eq!(a.resilience, b.resilience, "identical fault/retry history");
    assert_eq!(a.distances.as_slice(), b.distances.as_slice());
    dump_reports(
        "same_seed_replays_identical_reports_and_outputs",
        &[a.resilience.as_ref().expect("report")],
    );
}

#[test]
fn knn_poisoned_tiles_degrade_per_tile_not_per_graph() {
    let m = sample();
    let clean = NearestNeighbors::new(device(), Distance::Euclidean)
        .fit(m.clone())
        .kneighbors(&m, 3)
        .expect("clean knn");
    assert!(clean.resilience.is_empty(), "no policy, no reports");

    // Three index slabs → three tiles; every tile's first hash insert
    // overflows, so each degrades independently.
    let dev = device().with_fault_plan(FaultPlan::seeded(4).with_hash_overflows(1000));
    let nn = NearestNeighbors::new(dev, Distance::Euclidean)
        .with_options(PairwiseOptions {
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
            resilience: Some(ResiliencePolicy::default()),
        })
        .with_index_batch_rows(4)
        .fit(m.clone());
    let got = nn
        .kneighbors(&m, 3)
        .expect("poisoned tiles degrade, graph completes");
    assert_eq!(got.resilience.len(), 3, "one report per tile");
    assert!(got.resilience.iter().all(|r| r.downgraded));
    assert_eq!(
        got.indices, clean.indices,
        "degraded tiles keep the graph exact"
    );
    for (a, b) in got.distances.iter().zip(&clean.distances) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12);
        }
    }
    let refs: Vec<&ResilienceReport> = got.resilience.iter().collect();
    dump_reports("knn_poisoned_tiles_degrade_per_tile_not_per_graph", &refs);
}

fn arb_matrix() -> impl PropStrategy<Value = CsrMatrix<f64>> {
    (2usize..8, 2usize..16).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..400).prop_map(|v| v as f64 / 100.0),
            ],
            rows * cols,
        )
        .prop_map(move |data| CsrMatrix::from_dense(rows, cols, &data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whenever the cascade succeeds under an injected fault mix, the
    /// distances are byte-identical to a fault-free run of whatever plan
    /// it landed on — and replaying the same seed reproduces both the
    /// fault history and the bytes.
    #[test]
    fn faulty_runs_match_fault_free_runs_bit_for_bit(
        m in arb_matrix(),
        seed in 0u64..1024,
        rate in prop_oneof![Just(0u16), Just(150u16), Just(400u16)],
    ) {
        let plan = FaultPlan::seeded(seed)
            .with_transient_launch_failures(rate)
            .with_hash_overflows(rate / 2);
        let dev = device().with_fault_plan(plan.clone());
        let policy = ResiliencePolicy::with_retries(50);
        // Retries exhausted under an extreme mix is acceptable; the
        // property only constrains successful runs.
        if let Ok(r) = run(&dev, &m, Strategy::HybridCooSpmv, SmemMode::Hash, Some(policy)) {
            let rep = r.resilience.clone().expect("report");

            // Fault-free run of the plan the cascade landed on.
            let clean = run(&device(), &m, rep.final_strategy, rep.final_smem, None)
                .expect("final plan runs clean");
            prop_assert_eq!(r.distances.as_slice(), clean.distances.as_slice());

            // Deterministic replay.
            let dev2 = device().with_fault_plan(plan);
            let r2 = run(&dev2, &m, Strategy::HybridCooSpmv, SmemMode::Hash,
                         Some(ResiliencePolicy::with_retries(50)))
                .expect("same seed, same outcome");
            prop_assert_eq!(r2.resilience.as_ref(), Some(&rep));
            prop_assert_eq!(r.distances.as_slice(), r2.distances.as_slice());
        }
    }
}
