//! Profiler integration suite.
//!
//! Mirrors how Nsight Compute is trusted in practice:
//!
//! 1. **Coverage** — every kernel strategy, run under the profiler,
//!    reports named ranges (≥3 per strategy) rather than dumping its
//!    whole cost into the unattributed bucket.
//! 2. **Attribution identity** — per launch, the exclusive
//!    effective-issue counts of all ranges plus the unattributed
//!    remainder must equal the launch total exactly. A profiler whose
//!    percentages don't sum to 100 is lying somewhere.
//! 3. **Export** — the chrome-trace document parses and validates with
//!    the same checker CI runs (`xtask check_bench_json --trace`).
//! 4. **Heisenberg check** — a proptest asserting that enabling the
//!    profiler leaves both [`Counters`] and the [`CostBreakdown`]
//!    byte-identical to an unprofiled run: observation must not perturb
//!    the measurement.

use std::collections::BTreeSet;

use bench::validate_chrome_trace;
use gpu_sim::{chrome_trace, Device, LaunchStats};
use proptest::prelude::*;
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;
use sparse_dist::{PairwiseOptions, SmemMode, Strategy as KernelStrategy};

const STRATEGIES: [KernelStrategy; 4] = [
    KernelStrategy::ExpandSortContract,
    KernelStrategy::NaiveCsr,
    KernelStrategy::NaiveCsrShared,
    KernelStrategy::HybridCooSpmv,
];

fn sample_matrix() -> CsrMatrix<f64> {
    let trips: Vec<(u32, u32, f64)> = (0..24u32)
        .flat_map(|r| (0..12u32).map(move |c| (r, (c * 11 + r * 3) % 64, 1.0 + f64::from(c))))
        .collect();
    CsrMatrix::from_triplets(24, 64, &trips).expect("valid")
}

fn profiled_launches(strategy: KernelStrategy, distance: Distance) -> Vec<LaunchStats> {
    let dev = Device::volta().with_profiler(true);
    let a = sample_matrix();
    let q = a.slice_rows(0..8);
    let opts = PairwiseOptions {
        strategy,
        smem_mode: SmemMode::Auto,
        resilience: None,
    };
    sparse_dist::pairwise_distances_with(&dev, &q, &a, distance, &DistanceParams::default(), &opts)
        .unwrap_or_else(|e| panic!("{distance} via {}: {e}", strategy.name()))
        .launches
}

/// Asserts the attribution identity for one launch: Σ exclusive counts
/// over all ranges, plus the unattributed remainder, equals the launch
/// total — for effective issues and for global traffic.
fn assert_attribution_exact(stats: &LaunchStats) {
    let profile = stats
        .profile
        .as_ref()
        .unwrap_or_else(|| panic!("{}: profiler on but no profile", stats.name));
    let range_issues: u64 = profile
        .ranges
        .iter()
        .map(|r| r.exclusive.effective_issues())
        .sum();
    assert_eq!(
        range_issues + profile.unattributed.effective_issues(),
        profile.total.effective_issues(),
        "{}: per-range effective issues do not sum to the launch total",
        stats.name
    );
    let range_bytes: u64 = profile
        .ranges
        .iter()
        .map(|r| r.exclusive.global_bytes)
        .sum();
    assert_eq!(
        range_bytes + profile.unattributed.global_bytes,
        profile.total.global_bytes,
        "{}: per-range global bytes do not sum to the launch total",
        stats.name
    );
    // The profile's notion of "total" is the launch's own ledger.
    assert_eq!(
        profile.total, stats.counters,
        "{}: profile total diverges from launch counters",
        stats.name
    );
}

#[test]
fn every_strategy_reports_named_ranges_with_exact_attribution() {
    for strategy in STRATEGIES {
        let launches = profiled_launches(strategy, Distance::Cosine);
        assert!(!launches.is_empty());
        let mut paths = BTreeSet::new();
        for stats in &launches {
            assert_attribution_exact(stats);
            let profile = stats.profile.as_ref().expect("profiled");
            for r in &profile.ranges {
                assert!(r.calls > 0, "{}: range {} never called", stats.name, r.path);
                paths.insert(r.path.clone());
            }
        }
        assert!(
            paths.len() >= 3,
            "{}: expected >= 3 named ranges across its launches, got {:?}",
            strategy.name(),
            paths
        );
    }
}

#[test]
fn range_estimates_never_exceed_the_launch_estimate() {
    for strategy in STRATEGIES {
        for stats in profiled_launches(strategy, Distance::Manhattan) {
            let profile = stats.profile.as_ref().expect("profiled");
            for r in &profile.ranges {
                assert!(
                    r.est_seconds <= profile.cost.total_seconds * (1.0 + 1e-9),
                    "{}: range {} estimated above the whole launch",
                    stats.name,
                    r.path
                );
            }
        }
    }
}

#[test]
fn profile_is_absent_when_the_profiler_is_off() {
    let dev = Device::volta();
    let a = sample_matrix();
    let opts = PairwiseOptions::default();
    let r = sparse_dist::pairwise_distances_with(
        &dev,
        &a,
        &a,
        Distance::Cosine,
        &DistanceParams::default(),
        &opts,
    )
    .expect("runs");
    assert!(r.launches.iter().all(|l| l.profile.is_none()));
}

#[test]
fn chrome_trace_round_trips_through_the_ci_validator() {
    let mut launches = Vec::new();
    for strategy in STRATEGIES {
        launches.extend(profiled_launches(strategy, Distance::Cosine));
    }
    let trace = chrome_trace(&launches);
    validate_chrome_trace(&trace).expect("chrome-trace validates");
    // Determinism: the export is a pure function of the launch stats.
    assert_eq!(trace, chrome_trace(&launches));
}

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..8, 1usize..16).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..400).prop_map(|v| v as f64 / 100.0),
            ],
            rows * cols,
        )
        .prop_map(move |data| CsrMatrix::from_dense(rows, cols, &data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The profiler is a pure observer: running with it enabled must
    /// leave every counter and the cost estimate byte-identical to an
    /// unprofiled run — for random inputs, every strategy, and a
    /// distance from each expansion family.
    #[test]
    fn profiled_counters_and_cost_are_byte_identical_to_off(a in arb_matrix()) {
        let off = Device::volta();
        let on = Device::volta().with_profiler(true);
        let params = DistanceParams::default();
        for strategy in STRATEGIES {
            for distance in [Distance::Manhattan, Distance::Cosine, Distance::DotProduct] {
                let opts = PairwiseOptions { strategy, smem_mode: SmemMode::Auto, resilience: None };
                let base = sparse_dist::pairwise_distances_with(
                    &off, &a, &a, distance, &params, &opts,
                ).expect("off run");
                let profiled = sparse_dist::pairwise_distances_with(
                    &on, &a, &a, distance, &params, &opts,
                ).expect("profiled run");
                prop_assert_eq!(base.launches.len(), profiled.launches.len());
                for (b, p) in base.launches.iter().zip(&profiled.launches) {
                    prop_assert!(b.profile.is_none());
                    prop_assert!(p.profile.is_some(), "{}: no profile", p.name);
                    prop_assert_eq!(
                        &b.counters, &p.counters,
                        "{} via {:?}: counters diverge under the profiler",
                        distance, strategy
                    );
                    prop_assert_eq!(
                        &b.cost, &p.cost,
                        "{} via {:?}: cost estimate diverges under the profiler",
                        distance, strategy
                    );
                }
            }
        }
    }
}
