//! Sanitizer integration suite.
//!
//! Two halves, mirroring how `compute-sanitizer` is used in practice:
//!
//! 1. **Clean-kernel certification** — every kernel strategy runs under
//!    [`SanitizerMode::Fail`] across representative distances and
//!    shared-memory modes. A single memcheck/racecheck/synccheck/
//!    initcheck finding turns the launch into an error, so these tests
//!    certify the shipped kernels hazard-free under the model.
//! 2. **Fault injection** — hand-written gpu-sim kernels that each
//!    contain exactly one class of bug, asserting the matching checker
//!    (and only a sensible one) fires. A checker that cannot catch its
//!    own seeded bug is vacuous.
//!
//! A proptest closes the loop on the cost model: enabling the sanitizer
//! in `Warn` mode must leave every [`Counters`] field byte-identical to
//! an `Off` run — observation must not perturb the measurement.

use gpu_sim::{
    lanes_from_fn, CheckerKind, Device, GlobalBuffer, LaunchConfig, SanitizerMode, SimError,
    WARP_SIZE,
};
use proptest::prelude::*;
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;
use sparse_dist::{PairwiseOptions, SmemMode, Strategy as KernelStrategy};

/// Distances chosen to cover every expansion-function shape: additive
/// (Manhattan), squared-norm (Euclidean), normed (Cosine), ratio
/// (Canberra), and the plain annihilating product (DotProduct).
const DISTANCES: [Distance; 5] = [
    Distance::Manhattan,
    Distance::Euclidean,
    Distance::Cosine,
    Distance::Canberra,
    Distance::DotProduct,
];

fn sample_matrix() -> CsrMatrix<f64> {
    let trips: Vec<(u32, u32, f64)> = (0..24u32)
        .flat_map(|r| (0..12u32).map(move |c| (r, (c * 11 + r * 3) % 64, 1.0 + f64::from(c))))
        .collect();
    CsrMatrix::from_triplets(24, 64, &trips).expect("valid")
}

#[test]
fn every_strategy_is_clean_under_fail_mode() {
    let dev = Device::volta().with_sanitizer(SanitizerMode::Fail);
    let a = sample_matrix();
    let q = a.slice_rows(0..8);
    let params = DistanceParams::default();
    for strategy in [
        KernelStrategy::ExpandSortContract,
        KernelStrategy::NaiveCsr,
        KernelStrategy::NaiveCsrShared,
        KernelStrategy::HybridCooSpmv,
    ] {
        for distance in DISTANCES {
            let opts = PairwiseOptions {
                strategy,
                smem_mode: SmemMode::Auto,
                resilience: None,
            };
            let res = sparse_dist::pairwise_distances_with(&dev, &q, &a, distance, &params, &opts)
                .unwrap_or_else(|e| panic!("{distance} via {} under Fail: {e}", strategy.name()));
            for launch in &res.launches {
                assert!(
                    launch.sanitizer_reports.is_empty(),
                    "{distance} via {}: unexpected reports in {}",
                    strategy.name(),
                    launch.name
                );
            }
        }
    }
}

#[test]
fn every_smem_mode_is_clean_under_fail_mode() {
    // The hybrid kernel's three shared-memory lookup structures exercise
    // the atomic shadow paths (CAS claims, bloom ORs) — certify each.
    let dev = Device::volta().with_sanitizer(SanitizerMode::Fail);
    let a = sample_matrix();
    let q = a.slice_rows(0..8);
    let params = DistanceParams::default();
    for mode in [SmemMode::Dense, SmemMode::Hash, SmemMode::Bloom] {
        let opts = PairwiseOptions {
            strategy: KernelStrategy::HybridCooSpmv,
            smem_mode: mode,
            resilience: None,
        };
        sparse_dist::pairwise_distances_with(&dev, &q, &a, Distance::Cosine, &params, &opts)
            .unwrap_or_else(|e| panic!("{mode:?} under Fail: {e}"));
    }
}

#[test]
fn knn_pipeline_is_clean_under_fail_mode() {
    // Fused k-NN adds the selection kernels (insertion-sort emulation,
    // bitonic merges) on top of the distance pass.
    let dev = Device::volta().with_sanitizer(SanitizerMode::Fail);
    let a = sample_matrix();
    let nn = sparse_dist::NearestNeighbors::new(dev, Distance::Euclidean).fit(a.clone());
    let res = nn.kneighbors(&a, 4).expect("clean under Fail");
    assert_eq!(res.indices.len(), a.rows());
}

/// Expects `try_launch` to fail with sanitizer reports and returns them.
fn expect_reports(result: Result<gpu_sim::LaunchStats, SimError>) -> Vec<gpu_sim::SanitizerReport> {
    match result {
        Err(SimError::SanitizerFailure { reports, .. }) => {
            assert!(!reports.is_empty());
            reports
        }
        Err(other) => panic!("expected SanitizerFailure, got {other}"),
        Ok(_) => panic!("seeded fault was not detected"),
    }
}

fn fail_device() -> Device {
    Device::volta().with_sanitizer(SanitizerMode::Fail)
}

#[test]
fn memcheck_catches_oob_shared_write() {
    let reports = expect_reports(fail_device().try_launch(
        "inject_smem_oob",
        LaunchConfig::new(1, WARP_SIZE, 1024),
        |block| {
            let arr = block.alloc_shared::<f32>(8);
            block.fill_shared(&arr, 0.0);
            block.run_warps(|w| {
                // Lane 0 writes one past the end.
                let idx = lanes_from_fn(|l| (l == 0).then_some(8usize));
                w.smem_scatter(&arr, &idx, &lanes_from_fn(|_| 1.0));
            });
        },
    ));
    assert!(reports.iter().all(|r| r.kind == CheckerKind::Memcheck));
    assert_eq!(reports[0].lane, Some(0));
    assert_eq!(reports[0].offset, Some(8));
}

#[test]
fn memcheck_catches_oob_global_read_and_squashes_the_lane() {
    let dev = fail_device();
    let buf = dev.buffer_from_slice(&[1.0f32, 2.0]);
    let reports = expect_reports(dev.try_launch(
        "inject_global_oob",
        LaunchConfig::new(1, WARP_SIZE, 0),
        |block| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(Some); // lanes 2..32 are OOB
                let got = w.global_gather(&buf, &idx);
                // Squashed lanes read as default, not as stale memory.
                assert_eq!(got[5], 0.0);
            });
        },
    ));
    assert_eq!(reports.len(), WARP_SIZE - 2);
    assert!(reports.iter().all(|r| r.kind == CheckerKind::Memcheck));
}

#[test]
fn racecheck_catches_unsynchronized_cross_warp_write() {
    let reports = expect_reports(fail_device().try_launch(
        "inject_race",
        LaunchConfig::new(1, 2 * WARP_SIZE, 1024),
        |block| {
            let arr = block.alloc_shared::<u32>(4);
            block.fill_shared(&arr, 0);
            // Both warps write element 0 in the same barrier epoch.
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| (l == 0).then_some(0usize));
                w.smem_scatter(&arr, &idx, &lanes_from_fn(|_| w.warp_id as u32));
            });
        },
    ));
    assert!(reports.iter().any(|r| r.kind == CheckerKind::Racecheck));
}

#[test]
fn racecheck_accepts_barrier_separated_phases() {
    // The same access pattern with a sync between the writers is the
    // stage-then-consume idiom every kernel here uses — must be clean.
    fail_device()
        .try_launch(
            "race_free_phases",
            LaunchConfig::new(1, 2 * WARP_SIZE, 1024),
            |block| {
                let arr = block.alloc_shared::<u32>(4);
                block.fill_shared(&arr, 0);
                block.run_warps(|w| {
                    if w.warp_id == 0 {
                        let idx = lanes_from_fn(|l| (l == 0).then_some(0usize));
                        w.smem_scatter(&arr, &idx, &lanes_from_fn(|_| 7));
                    }
                });
                block.sync();
                block.run_warps(|w| {
                    if w.warp_id == 1 {
                        let idx = lanes_from_fn(|l| (l == 0).then_some(0usize));
                        let got = w.smem_gather(&arr, &idx);
                        assert_eq!(got[0], 7);
                    }
                });
            },
        )
        .expect("barrier-separated phases are race-free");
}

#[test]
fn racecheck_accepts_cross_warp_atomics() {
    // Concurrent atomics on one address are the hash-insert/bloom-set
    // idiom — serialized by hardware, not a data race.
    fail_device()
        .try_launch(
            "atomic_contention",
            LaunchConfig::new(1, 2 * WARP_SIZE, 1024),
            |block| {
                let arr = block.alloc_shared::<u32>(1);
                block.fill_shared(&arr, 0);
                block.run_warps(|w| {
                    let idx = lanes_from_fn(|l| (l == 0).then_some(0usize));
                    let _ = w.smem_atomic(&arr, &idx, &lanes_from_fn(|_| 1), |a, b| a | b);
                });
            },
        )
        .expect("atomics do not race");
}

#[test]
fn synccheck_catches_barrier_under_divergence() {
    let reports = expect_reports(fail_device().try_launch(
        "inject_divergent_barrier",
        LaunchConfig::new(1, WARP_SIZE, 0),
        |block| {
            block.run_warps(|w| {
                // Only half the lanes reach the barrier.
                w.barrier(&lanes_from_fn(|l| l < 16));
            });
        },
    ));
    assert!(reports.iter().any(|r| r.kind == CheckerKind::Synccheck));
}

#[test]
fn synccheck_catches_mismatched_arrival_counts() {
    let reports = expect_reports(fail_device().try_launch(
        "inject_arrival_mismatch",
        LaunchConfig::new(1, 2 * WARP_SIZE, 0),
        |block| {
            block.run_warps(|w| {
                // Warp 0 hits the barrier once; warp 1 never arrives.
                if w.warp_id == 0 {
                    w.barrier(&lanes_from_fn(|_| true));
                }
            });
            block.sync();
        },
    ));
    assert!(reports.iter().any(|r| r.kind == CheckerKind::Synccheck));
}

#[test]
fn initcheck_catches_read_of_unwritten_shared_memory() {
    let reports = expect_reports(fail_device().try_launch(
        "inject_uninit_smem",
        LaunchConfig::new(1, WARP_SIZE, 1024),
        |block| {
            // Allocated but never filled or written.
            let arr = block.alloc_shared::<f32>(16);
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| (l == 3).then_some(3usize));
                let _ = w.smem_gather(&arr, &idx);
            });
        },
    ));
    assert!(reports.iter().any(|r| r.kind == CheckerKind::Initcheck));
}

#[test]
fn initcheck_catches_read_of_uninitialized_global_memory() {
    let dev = fail_device();
    let buf = GlobalBuffer::<f32>::uninit(64);
    let reports = expect_reports(dev.try_launch(
        "inject_uninit_global",
        LaunchConfig::new(1, WARP_SIZE, 0),
        |block| {
            block.run_warps(|w| {
                let _ = w.global_gather(&buf, &lanes_from_fn(Some));
            });
        },
    ));
    assert_eq!(reports.len(), WARP_SIZE);
    assert!(reports.iter().all(|r| r.kind == CheckerKind::Initcheck));
}

#[test]
fn warn_mode_collects_reports_without_failing() {
    let dev = Device::volta().with_sanitizer(SanitizerMode::Warn);
    let stats = dev
        .try_launch(
            "warn_mode_oob",
            LaunchConfig::new(1, WARP_SIZE, 1024),
            |block| {
                let arr = block.alloc_shared::<f32>(8);
                block.fill_shared(&arr, 0.0);
                block.run_warps(|w| {
                    let idx = lanes_from_fn(|l| (l == 0).then_some(99usize));
                    w.smem_scatter(&arr, &idx, &lanes_from_fn(|_| 1.0));
                });
            },
        )
        .expect("warn mode completes");
    assert_eq!(stats.sanitizer_reports.len(), 1);
    assert_eq!(stats.sanitizer_reports[0].kind, CheckerKind::Memcheck);
}

#[test]
fn per_launch_override_beats_device_default() {
    // A Fail-mode launch on an Off-mode device still rejects the fault.
    let dev = Device::volta();
    let cfg = LaunchConfig::new(1, WARP_SIZE, 1024).with_sanitizer(SanitizerMode::Fail);
    let res = dev.try_launch("override_fail", cfg, |block| {
        let arr = block.alloc_shared::<f32>(4);
        block.fill_shared(&arr, 0.0);
        block.run_warps(|w| {
            let idx = lanes_from_fn(|l| (l == 0).then_some(4usize));
            w.smem_scatter(&arr, &idx, &lanes_from_fn(|_| 1.0));
        });
    });
    assert!(matches!(res, Err(SimError::SanitizerFailure { .. })));
}

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..8, 1usize..16).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..400).prop_map(|v| v as f64 / 100.0),
            ],
            rows * cols,
        )
        .prop_map(move |data| CsrMatrix::from_dense(rows, cols, &data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sanitizer is a pure observer: running with `Warn` must leave
    /// every counter byte-identical to `Off` — for random inputs, every
    /// strategy, and a distance from each expansion family.
    #[test]
    fn warn_mode_counters_are_byte_identical_to_off(a in arb_matrix()) {
        let off = Device::volta();
        let warn = Device::volta().with_sanitizer(SanitizerMode::Warn);
        let params = DistanceParams::default();
        for strategy in [
            KernelStrategy::ExpandSortContract,
            KernelStrategy::NaiveCsr,
            KernelStrategy::NaiveCsrShared,
            KernelStrategy::HybridCooSpmv,
        ] {
            for distance in [Distance::Manhattan, Distance::Cosine, Distance::DotProduct] {
                let opts = PairwiseOptions { strategy, smem_mode: SmemMode::Auto, resilience: None };
                let base = sparse_dist::pairwise_distances_with(
                    &off, &a, &a, distance, &params, &opts,
                ).expect("off run");
                let observed = sparse_dist::pairwise_distances_with(
                    &warn, &a, &a, distance, &params, &opts,
                ).expect("warn run");
                prop_assert_eq!(base.launches.len(), observed.launches.len());
                for (b, o) in base.launches.iter().zip(&observed.launches) {
                    prop_assert!(o.sanitizer_reports.is_empty(), "{}: reports", o.name);
                    prop_assert_eq!(
                        &b.counters, &o.counters,
                        "{} via {:?}: counters diverge under Warn", distance, strategy
                    );
                }
            }
        }
    }
}
