//! Workspace-level property tests: random sparse matrices through the
//! full public API, compared against the dense reference.

use proptest::prelude::*;
use semiring::reference::dense_pairwise;
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;
use sparse_dist::{Device, PairwiseOptions, SmemMode, Strategy as KernelStrategy};

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..8, 1usize..16).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..400).prop_map(|v| v as f64 / 100.0),
            ],
            rows * cols,
        )
        .prop_map(move |data| CsrMatrix::from_dense(rows, cols, &data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full device pipeline equals the closed-form reference for a
    /// random matrix pair, every distance, every strategy.
    #[test]
    fn device_pipeline_matches_reference(a in arb_matrix(), b in arb_matrix()) {
        // Reshape b to share a's dimensionality.
        let b = if b.cols() == a.cols() {
            b
        } else {
            let cols = a.cols();
            let data: Vec<f64> = (0..b.rows() * cols)
                .map(|i| {
                    let (r, c) = (i / cols, i % cols);
                    if c < b.cols() { b.get(r, c as u32) } else { 0.0 }
                })
                .collect();
            CsrMatrix::from_dense(b.rows(), cols, &data)
        };
        let dev = Device::volta();
        let params = DistanceParams { minkowski_p: 2.5 };
        for d in Distance::ALL {
            let want = dense_pairwise(&a, &b, d, &params);
            for strategy in [KernelStrategy::HybridCooSpmv, KernelStrategy::NaiveCsr] {
                let opts = PairwiseOptions { strategy, smem_mode: SmemMode::Auto, resilience: None };
                let got = sparse_dist::pairwise_distances_with(&dev, &a, &b, d, &params, &opts)
                    .expect("valid shapes");
                prop_assert!(
                    got.distances.max_abs_diff(&want) < 1e-6,
                    "{} via {:?}", d, strategy
                );
            }
        }
    }

    /// Self-distance matrices of metric distances have zero diagonals and
    /// are symmetric, end-to-end through the device pipeline.
    #[test]
    fn metric_self_distance_matrices_are_symmetric(a in arb_matrix()) {
        let dev = Device::volta();
        let params = DistanceParams::default();
        for d in Distance::ALL.into_iter().filter(|d| d.is_metric()) {
            let got = sparse_dist::pairwise_distances(&dev, &a, &a, d)
                .expect("valid shapes");
            let _ = params;
            for i in 0..a.rows() {
                prop_assert!(got.distances.get(i, i).abs() < 1e-6, "{}: diagonal", d);
                for j in 0..a.rows() {
                    let dij = got.distances.get(i, j);
                    let dji = got.distances.get(j, i);
                    prop_assert!((dij - dji).abs() < 1e-6, "{}: symmetry", d);
                    prop_assert!(dij > -1e-9, "{}: positivity", d);
                }
            }
        }
    }

    /// Batched k-NN equals unbatched k-NN for any batch size.
    #[test]
    fn knn_batching_invariance(a in arb_matrix(), batch_bytes in 8usize..4096) {
        let dev = Device::volta();
        let k = 3.min(a.rows());
        let nn = sparse_dist::NearestNeighbors::new(dev.clone(), Distance::Manhattan)
            .fit(a.clone());
        let whole = nn.kneighbors(&a, k).expect("ok");
        let nn_batched = sparse_dist::NearestNeighbors::new(dev, Distance::Manhattan)
            .fit(a.clone())
            .with_batch_bytes(batch_bytes);
        let split = nn_batched.kneighbors(&a, k).expect("ok");
        prop_assert_eq!(whole.indices, split.indices);
    }
}
