//! Property tests for the IVF approximate tier (DESIGN §15).
//!
//! Three contracts, held under randomized operands:
//!
//! * **Exactness at full probe.** With `nprobe == nlist` every posting
//!   list would be probed, so the search degenerates to the exact
//!   estimator itself (same slab geometry, same execution core —
//!   DESIGN §15) and must reproduce its answer *byte for byte* —
//!   across kernel strategies, distance families, and host-thread
//!   counts (the builder knob; the `GPU_SIM_HOST_THREADS` env override
//!   preserves the property too, it just pins the count process-wide).
//! * **Recall monotonicity.** Probing more posting lists can only grow
//!   each query's candidate pool, so recall@k against the exact oracle
//!   is monotone non-decreasing in `nprobe`, ending at exactly 1.0.
//! * **Partial-probe bit stability.** For single-pass distance
//!   families (annihilating / expansion-based: Euclidean, Cosine) a
//!   reranked pair's distance is a pure function of the fitted posting
//!   lists — the same `(query, id)` pair served at different partial
//!   `nprobe` values carries identical bits. NAMM families stream the
//!   gathered query rows in their second pass, so their bits
//!   re-associate (ulp-level) when the visitor set changes; they are
//!   covered by the recall and full-probe contracts only.

use proptest::prelude::*;
use semiring::Distance;
use sparse::CsrMatrix;
use sparse_dist::{
    Device, IvfIndex, IvfParams, KnnResult, NearestNeighbors, PairwiseOptions, SmemMode,
    Strategy as KernelStrategy,
};

fn arb_index() -> impl Strategy<Value = CsrMatrix<f64>> {
    (6usize..20, 4usize..12).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..400).prop_map(|v| v as f64 / 100.0),
            ],
            rows * cols,
        )
        .prop_map(move |data| CsrMatrix::from_dense(rows, cols, &data))
    })
}

/// Bitwise equality of two k-NN answers (indices and distance bits).
fn assert_bit_identical(got: &KnnResult<f64>, want: &KnnResult<f64>, ctx: &str) {
    assert_eq!(got.indices, want.indices, "{ctx}: indices");
    for (q, (a, b)) in got.distances.iter().zip(&want.distances).enumerate() {
        let got_bits: Vec<u64> = a.iter().map(|d| d.to_bits()).collect();
        let want_bits: Vec<u64> = b.iter().map(|d| d.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "{ctx}: distance bits of query {q}");
    }
}

/// Mean recall@k of `got` against the exact `want`.
fn recall(got: &KnnResult<f64>, want: &KnnResult<f64>) -> f64 {
    let mut total = 0.0;
    let mut rows = 0usize;
    for (g, w) in got.indices.iter().zip(&want.indices) {
        if w.is_empty() {
            continue;
        }
        rows += 1;
        total += g.iter().filter(|i| w.contains(i)).count() as f64 / w.len() as f64;
    }
    if rows == 0 {
        1.0
    } else {
        total / rows as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IVF at `nprobe == nlist` equals the exact estimator byte for
    /// byte, for every strategy × distance family × host-thread count.
    #[test]
    fn full_probe_is_byte_identical_to_exact(
        m in arb_index(),
        nlist in 2usize..7,
        seed in 0u64..1000,
    ) {
        let k = 4.min(m.rows());
        for threads in [1usize, 4] {
            let device = Device::volta().with_host_threads(threads);
            for strategy in [KernelStrategy::HybridCooSpmv, KernelStrategy::NaiveCsr] {
                let opts = PairwiseOptions {
                    strategy,
                    smem_mode: SmemMode::Auto,
                    resilience: None,
                };
                for distance in [Distance::Euclidean, Distance::Cosine, Distance::Manhattan] {
                    let nn = NearestNeighbors::new(device.clone(), distance)
                        .with_options(opts)
                        .fit(m.clone());
                    let exact = nn.kneighbors(&m, k).expect("exact query runs");
                    let ivf = IvfIndex::fit(
                        &nn,
                        IvfParams { nlist, seed, ..IvfParams::default() },
                    )
                    .expect("ivf fit runs");
                    let ans = ivf
                        .search_with_nprobe(&m, k, ivf.nlist())
                        .expect("ivf query runs");
                    assert_bit_identical(
                        &ans.knn,
                        &exact,
                        &format!("{distance:?} via {strategy:?}, {threads} host thread(s)"),
                    );
                }
            }
        }
    }

    /// Recall@k against the exact oracle never decreases as `nprobe`
    /// grows, the full-probe point recalls everything, and — for
    /// single-pass families — a pair served at two different partial
    /// `nprobe` values carries identical distance bits.
    #[test]
    fn recall_is_monotone_and_partial_probe_bits_are_stable(
        m in arb_index(),
        nlist in 2usize..7,
        seed in 0u64..1000,
    ) {
        let k = 4.min(m.rows());
        let device = Device::volta();
        for distance in [Distance::Euclidean, Distance::Cosine, Distance::Manhattan] {
            let nn = NearestNeighbors::new(device.clone(), distance).fit(m.clone());
            let exact = nn.kneighbors(&m, k).expect("exact query runs");
            let ivf = IvfIndex::fit(
                &nn,
                IvfParams { nlist, seed, ..IvfParams::default() },
            )
            .expect("ivf fit runs");
            let mut last = 0.0f64;
            let mut pair_bits: std::collections::BTreeMap<(usize, usize), u64> =
                std::collections::BTreeMap::new();
            for nprobe in 1..=ivf.nlist() {
                let ans = ivf
                    .search_with_nprobe(&m, k, nprobe)
                    .expect("ivf query runs");
                let r = recall(&ans.knn, &exact);
                prop_assert!(
                    r + 1e-12 >= last,
                    "{:?}: recall fell {} -> {} at nprobe {}",
                    distance, last, r, nprobe
                );
                last = r;
                if nprobe == ivf.nlist()
                    || matches!(distance, Distance::Manhattan)
                {
                    // Full probe runs the exact path, whose bits may
                    // differ from the slab rerank's by re-association
                    // (DESIGN §15), and NAMM families re-associate
                    // with the visitor set — stability is a
                    // partial-probe, single-pass contract.
                    continue;
                }
                for (q, (ids, ds)) in ans.knn.indices.iter().zip(&ans.knn.distances).enumerate() {
                    for (&i, d) in ids.iter().zip(ds) {
                        if let Some(prev) = pair_bits.insert((q, i), d.to_bits()) {
                            prop_assert!(
                                prev == d.to_bits(),
                                "{:?}: pair ({}, {}) bits drift with nprobe {}",
                                distance, q, i, nprobe
                            );
                        }
                    }
                }
            }
            prop_assert!(
                (last - 1.0).abs() < 1e-12,
                "{:?}: full probe recall {} != 1.0",
                distance, last
            );
        }
    }
}
