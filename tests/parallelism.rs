//! Host-parallel grid execution must be unobservable.
//!
//! The simulator can run a launch's blocks across a host thread pool
//! ([`Device::with_host_threads`] / `GPU_SIM_HOST_THREADS`). Its
//! determinism contract (DESIGN.md §10) says parallel execution is a
//! pure wall-clock optimization: outputs, counters, roofline seconds,
//! sanitizer findings, profiler attribution, and injected-fault replay
//! are all byte-identical to serial execution. These tests pin that
//! contract across every kernel strategy and both distance families,
//! including under an active [`FaultPlan`] and `SanitizerMode::Fail`
//! (the CI `fault-matrix` job re-runs this suite with
//! `RESILIENCE_SANITIZER=fail`).
//!
//! Note: the `GPU_SIM_HOST_THREADS` env var overrides the builder, so
//! under that override the 1/2/8-thread runs collapse to the same pool
//! size — still a valid (repeated-run) determinism check, but the CI
//! jobs run this suite without the override to exercise serial vs
//! parallel for real.

use gpu_sim::FaultPlan;
use proptest::prelude::*;
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;
use sparse_dist::{
    Device, KernelError, MultiDevice, NearestNeighbors, PairwiseOptions, PairwiseResult,
    ResiliencePolicy, SanitizerMode, SmemMode, Strategy,
};

const THREADS: [usize; 3] = [1, 2, 8];
const STRATEGIES: [Strategy; 4] = [
    Strategy::HybridCooSpmv,
    Strategy::NaiveCsr,
    Strategy::NaiveCsrShared,
    Strategy::ExpandSortContract,
];
/// One distance per semiring family: Euclidean is `Family::Expanded`
/// (annihilating dot-product + norm expansion), Canberra is
/// `Family::Namm` (non-annihilating monoid over the column union).
const DISTANCES: [Distance; 2] = [Distance::Euclidean, Distance::Canberra];

/// Test device honoring the `RESILIENCE_SANITIZER` CI hook, so the
/// fault-matrix job runs the whole suite under `SanitizerMode::Fail`.
fn device(host_threads: usize) -> Device {
    let dev = Device::volta().with_host_threads(host_threads);
    match std::env::var("RESILIENCE_SANITIZER").as_deref() {
        Ok("fail") => dev.with_sanitizer(SanitizerMode::Fail),
        Ok("warn") => dev.with_sanitizer(SanitizerMode::Warn),
        _ => dev,
    }
}

/// A dataset big enough to span many blocks per launch (so the pool
/// actually has work to race over) but small enough to stay fast.
fn sample(rows: usize, cols: usize) -> CsrMatrix<f64> {
    let mut data = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            if (3 * r + 5 * c) % 7 == 0 {
                data[r * cols + c] = 0.25 + (r as f64) / 11.0 + (c as f64) / 29.0;
            }
        }
    }
    CsrMatrix::from_dense(rows, cols, &data)
}

fn run(
    dev: &Device,
    m: &CsrMatrix<f64>,
    distance: Distance,
    strategy: Strategy,
    resilience: Option<ResiliencePolicy>,
) -> Result<PairwiseResult<f64>, KernelError> {
    sparse_dist::pairwise_distances_with(
        dev,
        m,
        m,
        distance,
        &DistanceParams::default(),
        &PairwiseOptions {
            strategy,
            smem_mode: SmemMode::Auto,
            resilience,
        },
    )
}

/// Asserts every observable launch artifact matches between a serial
/// reference and a pooled run: output bits, per-launch counters,
/// roofline seconds, sanitizer reports, and profiler attribution.
fn assert_identical(label: &str, serial: &PairwiseResult<f64>, pooled: &PairwiseResult<f64>) {
    let sbits: Vec<u64> = serial
        .distances
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let pbits: Vec<u64> = pooled
        .distances
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(sbits, pbits, "{label}: output bits diverge");
    assert_eq!(
        serial.launches.len(),
        pooled.launches.len(),
        "{label}: launch count diverges"
    );
    for (s, p) in serial.launches.iter().zip(&pooled.launches) {
        assert_eq!(s.name, p.name, "{label}: launch order diverges");
        assert_eq!(
            s.counters, p.counters,
            "{label}: counters diverge in {}",
            s.name
        );
        assert_eq!(
            s.cost.total_seconds.to_bits(),
            p.cost.total_seconds.to_bits(),
            "{label}: roofline seconds diverge in {}",
            s.name
        );
        assert_eq!(
            s.sanitizer_reports, p.sanitizer_reports,
            "{label}: sanitizer findings diverge in {}",
            s.name
        );
        assert_eq!(
            s.profile, p.profile,
            "{label}: profiler attribution diverges in {}",
            s.name
        );
    }
}

#[test]
fn every_strategy_and_family_is_identical_across_thread_counts() {
    let m = sample(24, 18);
    for strategy in STRATEGIES {
        for distance in DISTANCES {
            let serial = run(&device(1).with_profiler(true), &m, distance, strategy, None)
                .unwrap_or_else(|e| panic!("{distance} via {}: {e}", strategy.name()));
            for threads in THREADS {
                let pooled = run(
                    &device(threads).with_profiler(true),
                    &m,
                    distance,
                    strategy,
                    None,
                )
                .unwrap_or_else(|e| panic!("{distance} via {} x{threads}: {e}", strategy.name()));
                assert_identical(
                    &format!("{distance} via {} x{threads}", strategy.name()),
                    &serial,
                    &pooled,
                );
            }
        }
    }
}

#[test]
fn fault_injection_replays_identically_under_a_thread_pool() {
    // Injection-armed launches stay serial inside the executor, but the
    // surrounding retry/cascade engine must still see the exact same
    // fault sequence and produce the exact same report and bytes.
    let m = sample(20, 16);
    let plan = FaultPlan::seeded(7)
        .with_transient_launch_failures(300)
        .with_hash_overflows(150);
    let reference = run(
        &device(1).with_fault_plan(plan.clone()),
        &m,
        Distance::Euclidean,
        Strategy::HybridCooSpmv,
        Some(ResiliencePolicy::with_retries(50)),
    )
    .expect("retries absorb the injected mix");
    let ref_rep = reference.resilience.clone().expect("report");
    for threads in THREADS {
        let pooled = run(
            &device(threads).with_fault_plan(plan.clone()),
            &m,
            Distance::Euclidean,
            Strategy::HybridCooSpmv,
            Some(ResiliencePolicy::with_retries(50)),
        )
        .expect("same plan, same outcome");
        assert_identical("faulty hybrid", &reference, &pooled);
        assert_eq!(
            pooled.resilience.as_ref(),
            Some(&ref_rep),
            "x{threads}: fault replay diverges"
        );
    }
}

#[test]
fn sanitizer_fail_mode_passes_on_clean_kernels_with_a_pool() {
    // Fail mode turns any memcheck/racecheck/synccheck finding into a
    // launch error; a clean kernel must stay clean no matter how many
    // host threads race over its blocks.
    let m = sample(16, 12);
    for strategy in STRATEGIES {
        let dev = Device::volta()
            .with_host_threads(8)
            .with_sanitizer(SanitizerMode::Fail);
        let r = run(&dev, &m, Distance::Cosine, strategy, None)
            .unwrap_or_else(|e| panic!("{} under Fail x8: {e}", strategy.name()));
        for l in &r.launches {
            assert!(
                l.sanitizer_reports.is_empty(),
                "{}: unexpected findings in {}",
                strategy.name(),
                l.name
            );
        }
    }
}

#[test]
fn sharded_knn_is_identical_across_thread_counts() {
    let m = sample(30, 14);
    let serial = NearestNeighbors::new(device(1), Distance::Euclidean)
        .fit(m.clone())
        .kneighbors(&m, 5)
        .expect("serial knn");
    for threads in THREADS {
        let multi = MultiDevice::replicate(&device(threads), 3);
        let sharded = NearestNeighbors::new(device(threads), Distance::Euclidean)
            .fit(m.clone())
            .kneighbors_sharded(&multi, &m, 5)
            .expect("sharded knn");
        assert_eq!(serial.indices, sharded.indices, "x{threads}: neighbor ids");
        for (a, b) in serial.distances.iter().zip(&sharded.distances) {
            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "x{threads}: neighbor distance bits");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized shapes: serial and 8-thread runs of the default
    /// strategy agree bit-for-bit on both output and counters.
    #[test]
    fn random_shapes_are_identical_serial_vs_pooled(
        rows in 4usize..28,
        cols in 4usize..22,
        distance in prop_oneof![Just(Distance::Euclidean), Just(Distance::Canberra)],
    ) {
        let m = sample(rows, cols);
        let serial = run(&device(1), &m, distance, Strategy::HybridCooSpmv, None)
            .expect("serial");
        let pooled = run(&device(8), &m, distance, Strategy::HybridCooSpmv, None)
            .expect("pooled");
        let sbits: Vec<u64> = serial.distances.as_slice().iter().map(|v| v.to_bits()).collect();
        let pbits: Vec<u64> = pooled.distances.as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(sbits, pbits);
        for (s, p) in serial.launches.iter().zip(&pooled.launches) {
            prop_assert_eq!(s.counters, p.counters);
        }
    }
}
